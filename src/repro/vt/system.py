"""Fault-tolerant virtual texturing: demand paging with graceful fallback.

Ties the megatexture page space, the residency set, and the page
streamer into one per-frame engine:

1. **Feedback pass** — the frame's packed tile-reference stream is
   coarsened to first-touch-ordered unique visible pages
   (:func:`repro.raster.feedback.page_requests`).
2. **Page-store scrub** — under a chaos policy with ``bitflip_rate``,
   resident unpinned pages are deterministically damaged; damaged pages
   are quarantined (dropped from residency) and refetched.
3. **Deadline pass** — in-flight requests age; those past
   ``timeout_frames`` are dropped as timed out.
4. **Request pass** — quarantine refetches, then visible non-resident
   pages, are enqueued up to ``max_in_flight`` (excess is deferred —
   backpressure, re-requested while still visible).
5. **Service pass** — the streamer spends at most ``frame_budget_us`` of
   simulated link time; completed pages enter residency (evicting LRU
   unpinned pages beyond ``max_resident_pages``).
6. **Fallback resolution** — every visible page still missing is
   transparently served by its finest resident ancestor MIP page
   (:func:`repro.texture.fallback.fallback_page`) and accounted as
   *degraded* with its MIP bias.

The invariant that makes this "fault-tolerant" rather than merely lossy:
**a frame never blocks**. Service time is budget-bounded, fallback always
lands on a pinned page, and every degradation is counted — so under 100%
first-attempt fetch faults plus injected stalls the stall counter stays
at zero while quality metrics quantify the penalty.

All inter-frame state — residency stamps, the in-flight queue, the fetch
RNG, and the frame counter the chaos scrub hashes — participates in
``snapshot_state()`` / ``restore_state()``, and the same (scalar) code
path serves both hierarchy engines, so checkpointed paged runs resume
bit-identically everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.reliability.chaos import ChaosPolicy
from repro.reliability.faults import FaultModel
from repro.reliability.transfer import TransferPolicy
from repro.texture.fallback import fallback_page
from repro.texture.tiling import L1_TILE_TEXELS, AddressSpace
from repro.vt.megatexture import MegaTexture
from repro.vt.residency import PageResidency
from repro.vt.shed import shed_page_requests
from repro.vt.streaming import PageStreamer

__all__ = [
    "VtConfig",
    "FrameVtStats",
    "VirtualTextureSystem",
    "FRAME_VT_INT_COLUMNS",
    "FRAME_VT_FLOAT_COLUMNS",
]


@dataclass(frozen=True)
class VtConfig:
    """Virtual-texturing configuration.

    Attributes:
        page_texels: page edge in texels (power of two >= 4).
        max_resident_pages: residency budget, pinned pages included.
        max_in_flight: in-flight fetch bound (backpressure threshold).
        frame_budget_us: simulated link time the streamer may spend per
            frame; the deadline that late pages miss.
        fetch_latency_us: base cost of one page transfer attempt.
        timeout_frames: frames an in-flight request may wait before it is
            dropped as timed out.
        fault_model: probabilistic drop/spike model for fetch attempts.
        policy: retry/backoff budget for failed fetch attempts.
        chaos: deterministic first-attempt kill/stall fates for fetches
            plus page-store bitflips (quarantine + refetch).
    """

    page_texels: int = 32
    max_resident_pages: int = 512
    max_in_flight: int = 32
    frame_budget_us: float = 2000.0
    fetch_latency_us: float = 20.0
    timeout_frames: int = 4
    fault_model: FaultModel | None = None
    policy: TransferPolicy = TransferPolicy()
    chaos: ChaosPolicy | None = None

    def __post_init__(self) -> None:
        if self.page_texels < L1_TILE_TEXELS or (
            self.page_texels & (self.page_texels - 1)
        ):
            raise ValueError(
                f"page_texels must be a power of two >= {L1_TILE_TEXELS}, "
                f"got {self.page_texels}"
            )
        if self.max_resident_pages < 1:
            raise ValueError(
                f"max_resident_pages must be >= 1, got {self.max_resident_pages}"
            )
        if self.max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {self.max_in_flight}")
        if self.frame_budget_us < 0.0:
            raise ValueError(
                f"frame_budget_us must be >= 0, got {self.frame_budget_us}"
            )
        if self.fetch_latency_us <= 0.0:
            raise ValueError(
                f"fetch_latency_us must be > 0, got {self.fetch_latency_us}"
            )
        if self.timeout_frames < 1:
            raise ValueError(
                f"timeout_frames must be >= 1, got {self.timeout_frames}"
            )


#: Integer per-frame VT columns, in :class:`FrameVtStats` field order.
FRAME_VT_INT_COLUMNS = (
    "visible_pages",
    "requested_pages",
    "deferred",
    "completed_fetches",
    "fetched_bytes",
    "failed_attempts",
    "failed_fetches",
    "timed_out",
    "quarantined",
    "degraded_pages",
    "evictions",
    "latency_spikes",
    "stalls",
    "in_flight",
    "resident_pages",
)

#: Float per-frame VT columns.
FRAME_VT_FLOAT_COLUMNS = ("mip_bias_sum", "service_us", "backoff_us")


@dataclass
class FrameVtStats:
    """One frame's virtual-texturing outcome."""

    visible_pages: int = 0
    requested_pages: int = 0
    deferred: int = 0
    completed_fetches: int = 0
    fetched_bytes: int = 0
    failed_attempts: int = 0
    failed_fetches: int = 0
    timed_out: int = 0
    quarantined: int = 0
    degraded_pages: int = 0
    evictions: int = 0
    latency_spikes: int = 0
    stalls: int = 0
    in_flight: int = 0
    resident_pages: int = 0
    mip_bias_sum: float = 0.0
    service_us: float = 0.0
    backoff_us: float = 0.0

    @property
    def degraded(self) -> bool:
        """Whether any visible page fell back to a coarser MIP level."""
        return self.degraded_pages > 0

    @property
    def mean_mip_bias(self) -> float:
        """Average MIP bias over this frame's degraded pages."""
        if self.degraded_pages == 0:
            return 0.0
        return self.mip_bias_sum / self.degraded_pages


class VirtualTextureSystem:
    """Stateful per-frame VT engine over one workload's address space."""

    def __init__(self, config: VtConfig, space: AddressSpace):
        self.config = config
        self.mega = MegaTexture(space, config.page_texels)
        self.residency = PageResidency(
            config.max_resident_pages, self.mega.coarsest_pages()
        )
        self.streamer = PageStreamer(
            config.policy,
            fetch_latency_us=config.fetch_latency_us,
            fault_model=config.fault_model,
            chaos=config.chaos,
        )
        self._frame = 0

    # ------------------------------------------------------------------
    def run_frame(self, refs: np.ndarray, shed_bias: int = 0) -> FrameVtStats:
        """Page one frame; never blocks, always returns complete stats.

        ``shed_bias`` is the load shedder's quality knob: a positive bias
        requests every visible page ``shed_bias`` MIP levels coarser
        (:func:`repro.vt.shed.shed_page_requests`), collapsing the page
        set and its streaming traffic. Biased frames are accounted as
        degraded — every visible page carries the shed bias on top of any
        fallback bias — so shedding is never silent.
        """
        config = self.config
        stats = FrameVtStats()
        pages = [
            int(p) for p in shed_page_requests(self.mega, refs, shed_bias)
        ]
        stats.visible_pages = len(pages)
        if shed_bias > 0:
            stats.degraded_pages += len(pages)
            stats.mip_bias_sum += shed_bias * len(pages)

        for page in pages:
            self.residency.touch(page)

        # Page-store scrub: chaos bitflips damage resident unpinned pages;
        # damaged pages are quarantined and go back through the streamer.
        refetch: list[int] = []
        chaos = config.chaos
        if chaos is not None and chaos.bitflip_rate > 0.0:
            for page in self.residency.unpinned_pages():
                if chaos.decide_bitflip(f"pagestore:{page}|f{self._frame}"):
                    self.residency.drop(page)
                    refetch.append(page)
                    stats.quarantined += 1

        stats.timed_out = self.streamer.age_and_expire(config.timeout_frames)

        in_flight = self.streamer.pages()
        refetch_set = set(refetch)
        wanted = refetch + [
            page
            for page in pages
            if page not in self.residency
            and page not in in_flight
            and page not in refetch_set
        ]
        accepted, deferred = self.streamer.enqueue(wanted, config.max_in_flight)
        stats.requested_pages = accepted
        stats.deferred = deferred

        completed = self.streamer.service(config.frame_budget_us, stats)
        for page in completed:
            stats.evictions += len(self.residency.insert(page))
        stats.completed_fetches = len(completed)
        stats.fetched_bytes = len(completed) * self.mega.page_bytes

        # Fallback resolution: missing visible pages sample their finest
        # resident ancestor instead of stalling.
        for page in pages:
            if page not in self.residency:
                _, bias = fallback_page(self.mega, self.residency, page)
                stats.degraded_pages += 1
                stats.mip_bias_sum += bias

        stats.in_flight = len(self.streamer)
        stats.resident_pages = len(self.residency)
        self._frame += 1
        return stats

    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Capture residency, in-flight queue, RNG, and frame counter."""
        return {
            "frame": self._frame,
            "residency": self.residency.snapshot_state(),
            "streamer": self.streamer.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`snapshot_state` tree; inverse of the snapshot."""
        self._frame = int(state["frame"])
        self.residency.restore_state(state["residency"])
        self.streamer.restore_state(state["streamer"])
