"""Shared fixtures for the analytic-model tests."""

import pytest

from repro.experiments.config import Scale
from repro.experiments.traces import get_trace
from repro.texture.sampler import FilterMode

MICRO = Scale(width=96, height=72, frames=3, detail=0.25, name="micro")


@pytest.fixture(scope="package")
def micro_trace():
    """A small rendered village animation (shared across the package)."""
    return get_trace("village", MICRO, FilterMode.BILINEAR)


@pytest.fixture(scope="package")
def micro_trace_tri():
    """Trilinear variant (two mip levels interleave in the stream)."""
    return get_trace("village", MICRO, FilterMode.TRILINEAR)
