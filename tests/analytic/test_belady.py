"""Offline-optimal (Belady) replacement: hand cases and optimality bounds."""

import numpy as np
import pytest

from repro.analytic.belady import (
    belady_hits,
    belady_l2,
    next_use_indices,
    opt_l2_result,
)
from repro.analytic.stack_distance import stack_distances
from repro.core.l2_cache import L2CacheConfig, L2TextureCache
from repro.core.l1_cache import L1CacheConfig, L1CacheSim


def lru_hits(stream, capacity):
    """Fully-associative LRU hits, straight from stack distances."""
    d = stack_distances(np.asarray(stream))
    return int(((d >= 0) & (d < capacity)).sum())


class TestNextUse:
    def test_hand_stream(self):
        stream = np.array([7, 3, 7, 7, 5, 3])
        assert next_use_indices(stream).tolist() == [2, 5, 3, 6, 6, 6]

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_naive(self, seed):
        rng = np.random.default_rng(seed)
        stream = rng.integers(0, 20, size=150).tolist()
        nxt = next_use_indices(np.array(stream))
        for i, b in enumerate(stream):
            expect = next(
                (j for j in range(i + 1, len(stream)) if stream[j] == b),
                len(stream),
            )
            assert nxt[i] == expect


class TestBeladyHits:
    def test_textbook_example(self):
        # The classic OPT example: 5 hits at capacity 3.
        stream = np.array([1, 2, 3, 1, 2, 4, 1, 2, 3, 4])
        assert belady_hits(stream, 3) == 5

    def test_capacity_one_only_consecutive_repeats(self):
        stream = np.array([1, 1, 2, 1, 1])
        assert belady_hits(stream, 1) == 2

    def test_large_capacity_all_reuses_hit(self):
        stream = np.array([1, 2, 3, 1, 2, 3])
        assert belady_hits(stream, 10) == 3

    @pytest.mark.parametrize("seed", range(6))
    def test_never_below_lru(self, seed):
        rng = np.random.default_rng(seed)
        stream = rng.integers(0, 30, size=400)
        for cap in (2, 8, 16):
            assert belady_hits(stream, cap) >= lru_hits(stream, cap)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            belady_hits(np.array([1]), 0)


class TestBeladyL2:
    def test_sector_accounting(self):
        # Same block: sub 0 (full miss), sub 1 (partial), sub 0 (full hit).
        gids = np.array([5, 5, 5])
        subs = np.array([0, 1, 0])
        res = belady_l2(gids, subs, n_blocks=4)
        assert (res.full_misses, res.partial_hits, res.full_hits) == (1, 1, 1)
        assert res.host_downloads == 2

    def test_eviction_drops_sectors(self):
        # Capacity 1: the second block evicts the first; its return is a
        # fresh full miss, not a partial hit.
        gids = np.array([1, 2, 1])
        subs = np.array([0, 0, 0])
        res = belady_l2(gids, subs, n_blocks=1)
        assert res.full_misses == 3
        assert res.evictions == 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            belady_l2(np.array([1, 2]), np.array([0]), 4)


class TestOptBound:
    def test_opt_block_hits_at_least_online_policies(self, micro_trace_tri):
        trace = micro_trace_tri
        l1_bytes = 2 * 1024
        cfg = L2CacheConfig(size_bytes=64 * 1024)
        opt = opt_l2_result(trace, l1_bytes, cfg)
        opt_block_hit = 1.0 - opt.full_misses / opt.accesses

        space = trace.address_space
        for policy in ("clock", "lru", "fifo", "random"):
            l1 = L1CacheSim(L1CacheConfig(size_bytes=l1_bytes))
            l2 = L2TextureCache(
                L2CacheConfig(size_bytes=cfg.size_bytes, policy=policy), space
            )
            accesses = full_misses = 0
            for frame in trace.frames:
                sets = space.l1_set_indices(frame.refs, l1.config.n_sets)
                miss_refs = l1.access_frame(
                    frame.refs, frame.weights, sets
                ).miss_refs
                res = l2.access_frame(miss_refs)
                accesses += res.accesses
                full_misses += res.full_misses
            assert accesses == opt.accesses
            online_block_hit = 1.0 - full_misses / accesses
            assert opt_block_hit >= online_block_hit - 1e-12
