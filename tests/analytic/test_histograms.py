"""Reuse-distance histograms vs the §4 locality decomposition."""

import dataclasses

import numpy as np
import pytest

from repro.analytic.histograms import (
    distance_bin_labels,
    reuse_distance_histograms,
)
from repro.trace.locality import classify_locality
from repro.trace.trace import Trace


class TestBins:
    def test_labels_cover_overflow_and_cold(self):
        labels = distance_bin_labels(np.array([0, 1, 2, 4]))
        assert labels == ["0", "1", "2", "3-4", ">4", "cold"]


class TestAgainstLocality:
    def test_class_totals_match_classify_locality(self, micro_trace):
        hists = reuse_distance_histograms(micro_trace, 16)
        expect = classify_locality(micro_trace, 16).totals()
        assert hists.class_totals() == expect

    def test_run_mass_all_at_distance_zero(self, micro_trace):
        hists = reuse_distance_histograms(micro_trace, 16)
        run = hists.per_class["run"]
        assert run[0] == run.sum()

    def test_compulsory_all_cold(self, micro_trace):
        hists = reuse_distance_histograms(micro_trace, 16)
        comp = hists.per_class["compulsory"]
        assert comp[-1] == comp.sum()

    def test_per_frame_totals_cover_entries(self, micro_trace):
        hists = reuse_distance_histograms(micro_trace, 16)
        assert int(hists.per_frame.sum()) == hists.entries
        assert hists.per_frame.shape[0] == len(micro_trace.frames)


class TestNoObjectOffsets:
    def test_intra_object_folds_into_intra_frame(self, micro_trace):
        stripped = Trace(
            meta=micro_trace.meta,
            frames=[
                dataclasses.replace(f, object_offsets=None)
                for f in micro_trace.frames
            ],
            textures=micro_trace.textures,
        )
        plain = reuse_distance_histograms(stripped, 16)
        full = reuse_distance_histograms(micro_trace, 16)
        assert plain.class_totals()["intra_object"] == 0
        assert (
            plain.class_totals()["intra_frame"]
            == full.class_totals()["intra_object"] + full.class_totals()["intra_frame"]
        )
        # First-touch classes are unaffected by the object split.
        for name in ("inter_frame", "distant", "compulsory", "run"):
            assert plain.class_totals()[name] == full.class_totals()[name]


class TestValidation:
    def test_rejects_non_multiple_tile(self, micro_trace):
        with pytest.raises(ValueError):
            reuse_distance_histograms(micro_trace, 10)
