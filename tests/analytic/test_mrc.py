"""Miss-ratio curves: hand cases plus exact agreement with the simulator."""

import numpy as np
import pytest

from repro.analytic.mrc import (
    PAPER_L1_SIZES,
    full_mrc,
    l1_hit_mask,
    l1_mrc_sweep,
    l2_block_mrc,
    mrc_from_distances,
)
from repro.core.l1_cache import L1CacheConfig, L1CacheSim
from repro.core.l2_cache import L2CacheConfig


class TestFullMrc:
    def test_hand_stream(self):
        # A B A A C B -> distances [-1, -1, 1, 0, -1, 2], 3 cold misses.
        stream = np.array([1, 2, 1, 1, 3, 2])
        curve = full_mrc(stream, [1, 2, 3])
        assert curve.accesses == 6
        assert curve.cold == 3
        assert curve.misses.tolist() == [5, 4, 3]
        assert curve.miss_ratios.tolist() == [5 / 6, 4 / 6, 3 / 6]

    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(1)
        stream = rng.integers(0, 50, size=2000)
        curve = full_mrc(stream, [1, 2, 4, 8, 16, 32, 64])
        assert (np.diff(curve.misses) <= 0).all()

    def test_large_capacity_leaves_cold_only(self):
        stream = np.array([3, 1, 3, 1, 3])
        curve = full_mrc(stream, [100])
        assert curve.misses.tolist() == [2]

    def test_empty_stream(self):
        curve = full_mrc(np.array([], dtype=np.int64), [4])
        assert curve.accesses == 0
        assert curve.misses.tolist() == [0]
        assert curve.miss_ratios.tolist() == [0.0]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            mrc_from_distances(np.array([0, 1]), [0])

    def test_hash_sampled_close_to_exact(self):
        rng = np.random.default_rng(2)
        stream = rng.integers(0, 400, size=40000)
        caps = [8, 64, 256]
        exact = full_mrc(stream, caps).miss_ratios
        sampled = full_mrc(stream, caps, sample=0.5).miss_ratios
        assert np.abs(exact - sampled).max() < 0.05


class TestL1Sweep:
    @pytest.mark.parametrize("ways", [1, 2, 4])
    def test_exact_sweep_matches_simulator(self, micro_trace_tri, ways):
        trace = micro_trace_tri
        sizes = [2 * 1024, 8 * 1024]
        sweep = l1_mrc_sweep(trace, sizes, ways=ways)
        for size in sizes:
            sim = L1CacheSim(L1CacheConfig(size_bytes=size, ways=ways))
            space = trace.address_space
            misses = 0
            frame_misses = []
            for frame in trace.frames:
                sets = space.l1_set_indices(frame.refs, sim.config.n_sets)
                res = sim.access_frame(frame.refs, frame.weights, sets)
                misses += res.misses
                frame_misses.append(res.misses)
            point = sweep[size]
            assert point.misses == misses
            assert point.frame_misses.tolist() == frame_misses
            assert point.texel_reads == trace.total_texel_reads()

    def test_monotone_in_size(self, micro_trace):
        sweep = l1_mrc_sweep(micro_trace, PAPER_L1_SIZES)
        rates = [sweep[s].miss_rate for s in PAPER_L1_SIZES]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_sampled_close_to_exact(self, micro_trace):
        sizes = [2 * 1024, 32 * 1024]
        exact = l1_mrc_sweep(micro_trace, sizes)
        sampled = l1_mrc_sweep(micro_trace, sizes, sample=0.25)
        for s in sizes:
            assert abs(exact[s].miss_rate - sampled[s].miss_rate) < 0.005

    def test_rejects_bad_sample(self, micro_trace):
        with pytest.raises(ValueError):
            l1_mrc_sweep(micro_trace, [2048], sample=0.0)


class TestL1HitMask:
    def test_complement_is_the_sim_miss_stream(self, micro_trace):
        trace = micro_trace
        config = L1CacheConfig(size_bytes=2 * 1024)
        sim = L1CacheSim(config)
        space = trace.address_space
        sim_miss_refs = []
        for frame in trace.frames:
            sets = space.l1_set_indices(frame.refs, config.n_sets)
            sim_miss_refs.append(
                sim.access_frame(frame.refs, frame.weights, sets).miss_refs
            )
        sim_miss_refs = np.concatenate(sim_miss_refs)
        refs = np.concatenate([f.refs for f in trace.frames])
        analytic = refs[~l1_hit_mask(trace, config)]
        assert np.array_equal(analytic, sim_miss_refs)


class TestL2BlockMrc:
    def test_block_residency_bounded_and_monotone(self, micro_trace_tri):
        caps = [16, 64, 256]
        curve = l2_block_mrc(micro_trace_tri, 2 * 1024, caps)
        assert (np.diff(curve.misses) <= 0).all()
        assert (curve.hit_ratios >= 0).all() and (curve.hit_ratios <= 1).all()

    def test_capacity_at_config_blocks(self, micro_trace_tri):
        cfg = L2CacheConfig(size_bytes=256 * 1024)
        curve = l2_block_mrc(micro_trace_tri, 2 * 1024, [cfg.n_blocks])
        assert curve.capacities.tolist() == [cfg.n_blocks]
