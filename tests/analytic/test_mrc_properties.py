"""Property tests: the analytic models vs brute-force online simulation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.belady import belady_hits
from repro.analytic.mrc import full_mrc
from repro.core.l1_cache import L1CacheConfig, L1CacheSim
from repro.core.policies import make_policy

streams = st.lists(st.integers(min_value=0, max_value=24), min_size=1, max_size=300)
capacities = st.integers(min_value=1, max_value=16)


def online_policy_hits(stream, capacity, policy_name):
    """Fully-associative online cache driven through ``make_policy``."""
    policy = make_policy(policy_name, capacity)
    slot_of = {}
    block_of = {}
    free = list(range(capacity - 1, -1, -1))
    hits = 0
    for b in stream:
        slot = slot_of.get(b)
        if slot is None:
            if free:
                slot = free.pop()
            else:
                slot = policy.victim()
                del slot_of[block_of[slot]]
            slot_of[b] = slot
            block_of[slot] = b
        else:
            hits += 1
        policy.touch(slot)
    return hits


@settings(max_examples=60)
@given(stream=streams, capacity=capacities)
def test_fully_associative_mrc_matches_l1_sim(stream, capacity):
    """The MRC miss count at capacity W equals a W-way single-set sim's."""
    refs = np.asarray(stream, dtype=np.int64)
    config = L1CacheConfig(size_bytes=capacity * 64, ways=capacity)
    assert config.n_sets == 1
    sim = L1CacheSim(config)
    result = sim.access_frame(
        refs, np.ones(len(refs), dtype=np.int64), np.zeros(len(refs), dtype=np.int64)
    )
    curve = full_mrc(refs, [capacity])
    assert int(curve.misses[0]) == result.misses


@settings(max_examples=40)
@given(stream=streams, capacity=capacities)
def test_belady_at_least_every_online_policy(stream, capacity):
    """OPT hits bound clock, LRU, FIFO, and random from above."""
    refs = np.asarray(stream, dtype=np.int64)
    opt = belady_hits(refs, capacity)
    for name in ("clock", "lru", "fifo", "random"):
        assert opt >= online_policy_hits(stream, capacity, name)
