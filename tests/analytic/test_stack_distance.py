"""Differential tests for the stack-distance profilers."""

import numpy as np
import pytest

from repro.analytic.stack_distance import (
    FenwickTree,
    count_leq_before,
    hash_sample_mask,
    previous_occurrence,
    stack_distances,
    stack_distances_fenwick,
)


def naive_stack_distances(stream):
    """O(n^2) textbook definition: distinct blocks since the last access."""
    out = np.full(len(stream), -1, dtype=np.int64)
    last = {}
    for i, b in enumerate(stream):
        if b in last:
            out[i] = len(set(stream[last[b] + 1 : i]))
        last[b] = i
    return out


class TestFenwickTree:
    def test_point_add_prefix_sum(self):
        t = FenwickTree(8)
        t.add(0, 3)
        t.add(5, 2)
        assert t.prefix_sum(-1) == 0
        assert t.prefix_sum(0) == 3
        assert t.prefix_sum(4) == 3
        assert t.prefix_sum(7) == 5

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)


class TestPreviousOccurrence:
    def test_hand_stream(self):
        stream = np.array([7, 3, 7, 7, 5, 3])
        assert previous_occurrence(stream).tolist() == [-1, -1, 0, 2, -1, 1]

    def test_all_distinct(self):
        assert previous_occurrence(np.arange(5)).tolist() == [-1] * 5

    def test_empty_and_single(self):
        assert previous_occurrence(np.array([], dtype=np.int64)).tolist() == []
        assert previous_occurrence(np.array([42])).tolist() == [-1]


class TestCountLeqBefore:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive(self, seed):
        rng = np.random.default_rng(seed)
        vals = rng.integers(-10, 10, size=rng.integers(1, 200))
        expect = [int(np.sum(vals[:i] <= vals[i])) for i in range(len(vals))]
        assert count_leq_before(vals).tolist() == expect


class TestStackDistances:
    def test_hand_stream(self):
        # A B A A C B: B's reuse skips over {A, C} = distance 2.
        stream = np.array([1, 2, 1, 1, 3, 2])
        assert stack_distances(stream).tolist() == [-1, -1, 1, 0, -1, 2]

    @pytest.mark.parametrize("seed", range(8))
    def test_vectorized_matches_fenwick_and_naive(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 300))
        stream = rng.integers(0, max(2, n // 3), size=n)
        d_vec = stack_distances(stream)
        assert d_vec.tolist() == stack_distances_fenwick(stream).tolist()
        assert d_vec.tolist() == naive_stack_distances(stream.tolist()).tolist()

    def test_precomputed_prev_equivalent(self):
        stream = np.array([4, 4, 1, 4, 1, 2, 1])
        prev = previous_occurrence(stream)
        assert (
            stack_distances(stream, prev=prev).tolist()
            == stack_distances(stream).tolist()
        )


class TestHashSampleMask:
    def test_rate_one_keeps_all(self):
        assert hash_sample_mask(np.arange(100), 1.0).all()

    def test_deterministic_and_per_block(self):
        stream = np.array([5, 9, 5, 9, 5], dtype=np.int64)
        m1 = hash_sample_mask(stream, 0.5)
        m2 = hash_sample_mask(stream, 0.5)
        assert (m1 == m2).all()
        # All occurrences of one block share a verdict.
        assert m1[0] == m1[2] == m1[4]
        assert m1[1] == m1[3]

    def test_rate_roughly_honoured(self):
        kept = hash_sample_mask(np.arange(20000, dtype=np.int64), 0.25).mean()
        assert 0.2 < kept < 0.3

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_rejects_bad_rate(self, rate):
        with pytest.raises(ValueError):
            hash_sample_mask(np.arange(4), rate)
