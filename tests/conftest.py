"""Shared test configuration.

Tests must never read or pollute the developer's ``.trace_cache``; the
whole session runs against a temporary trace-cache directory (rendered
micro-traces are still shared in process memory within the session).
"""

import pytest
from hypothesis import HealthCheck, settings

# Property tests exercise numpy-heavy code whose first call pays warm-up
# costs; wall-clock deadlines just add flakiness there.
settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")


@pytest.fixture(autouse=True, scope="session")
def isolated_trace_cache(tmp_path_factory):
    import os

    path = tmp_path_factory.mktemp("trace_cache")
    old = os.environ.get("REPRO_TRACE_CACHE")
    os.environ["REPRO_TRACE_CACHE"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_TRACE_CACHE", None)
    else:
        os.environ["REPRO_TRACE_CACHE"] = old


@pytest.fixture(autouse=True, scope="session")
def isolated_sim_cache(tmp_path_factory):
    """Keep the persistent simulation-result store out of the working tree."""
    import os

    path = tmp_path_factory.mktemp("sim_cache")
    old = os.environ.get("REPRO_SIM_CACHE")
    os.environ["REPRO_SIM_CACHE"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_SIM_CACHE", None)
    else:
        os.environ["REPRO_SIM_CACHE"] = old


@pytest.fixture(autouse=True, scope="session")
def isolated_heartbeat(tmp_path_factory):
    """Keep the sweep supervisor's heartbeat journal out of the working tree."""
    import os

    path = tmp_path_factory.mktemp("heartbeat") / "heartbeat.jsonl"
    old = os.environ.get("REPRO_HEARTBEAT")
    os.environ["REPRO_HEARTBEAT"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_HEARTBEAT", None)
    else:
        os.environ["REPRO_HEARTBEAT"] = old


@pytest.fixture(autouse=True, scope="session")
def isolated_run_journal(tmp_path_factory):
    """Keep the experiment CLI's run journal out of the working tree."""
    import os

    path = tmp_path_factory.mktemp("run_journal") / "journal.json"
    old = os.environ.get("REPRO_RUN_JOURNAL")
    os.environ["REPRO_RUN_JOURNAL"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_RUN_JOURNAL", None)
    else:
        os.environ["REPRO_RUN_JOURNAL"] = old
