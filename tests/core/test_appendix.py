"""Fidelity tests: the Appendix pseudo-code vs the production L2 cache.

The paper's Appendix is the authoritative specification of L2 caching;
these tests transcribe-and-compare: arbitrary access streams must produce
*identical* outcome sequences (full hit / partial hit / full miss) from
:class:`AppendixL2Cache` and :class:`L2TextureCache`. (The production cache
additionally keeps a free list for §5.2 deallocation, so the differential
property covers streams without deallocation; the Appendix deallocation
path is tested separately.)
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.appendix import AppendixL2Cache
from repro.core.l2_cache import L2CacheConfig, L2TextureCache
from repro.texture.texture import Texture
from repro.texture.tiling import AddressSpace, pack_tile_refs


@pytest.fixture
def space():
    return AddressSpace([Texture("a", 64, 64), Texture("b", 32, 32)])


def run_production(space, accesses, n_blocks):
    """Run (tid, l2, l1) accesses one by one; return outcome kinds."""
    cache = L2TextureCache(
        L2CacheConfig(size_bytes=n_blocks * 1024, l2_tile_texels=16), space
    )
    kinds = []
    for tid, l2, l1 in accesses:
        tstart, _ = space.l2_extent(tid, 16)
        gid = tstart + l2
        res = cache.access_blocks(
            np.array([gid], dtype=np.int64), np.array([l1], dtype=np.int64)
        )
        if res.full_hits:
            kinds.append("l2_full_hit")
        elif res.partial_hits:
            kinds.append("l2_partial_hit")
        else:
            kinds.append("l2_full_miss")
    return kinds


def run_appendix(space, accesses, n_blocks):
    cache = AppendixL2Cache(space, n_blocks=n_blocks, l2_tile_texels=16)
    kinds = []
    for tid, l2, l1 in accesses:
        cache.bind(tid)
        kinds.append(cache.access(l2, l1).kind)
    return kinds


def access_strategy(space):
    """Random valid (tid, L2, L1) accesses over the fixture's textures."""
    def build(tid):
        layout = space.layout(tid, 16)
        return st.tuples(
            st.just(tid),
            st.integers(0, layout.total_blocks - 1),
            st.integers(0, layout.sub_blocks_per_block - 1),
        )
    return st.lists(
        st.one_of(build(0), build(1)), min_size=0, max_size=120
    )


class TestDifferential:
    @given(st.data(), st.sampled_from([1, 2, 4, 16]))
    @settings(max_examples=100, deadline=None)
    def test_property_identical_outcomes(self, data, n_blocks):
        space = AddressSpace([Texture("a", 64, 64), Texture("b", 32, 32)])
        accesses = data.draw(access_strategy(space))
        assert run_appendix(space, accesses, n_blocks) == run_production(
            space, accesses, n_blocks
        )


class TestAppendixDetails:
    def test_addresses_within_cache_memory(self, space):
        cache = AppendixL2Cache(space, n_blocks=4, l2_base_addr=0x1000)
        cache.bind(0)
        out = cache.access(0, 3)
        assert out.kind == "l2_full_miss"
        assert 0x1000 <= out.address < 0x1000 + 4 * cache.l2_block_size
        # L1 sub-block 3 sits 3 * 64 bytes into its block.
        assert (out.address - 0x1000) % cache.l2_block_size == 3 * 64

    def test_stable_address_on_rehit(self, space):
        cache = AppendixL2Cache(space, n_blocks=4)
        cache.bind(0)
        first = cache.access(5, 2)
        again = cache.access(5, 2)
        assert again.kind == "l2_full_hit"
        assert again.address == first.address

    def test_one_based_block_convention(self, space):
        cache = AppendixL2Cache(space, n_blocks=4)
        cache.bind(0)
        cache.access(0, 0)
        t = cache.t_table[0]
        assert t.l2_block == 1  # physical block 0, stored as 1 (0 = none)

    def test_requires_bound_texture(self, space):
        cache = AppendixL2Cache(space, n_blocks=4)
        with pytest.raises(RuntimeError):
            cache.access(0, 0)

    def test_deallocate_current_texture(self, space):
        cache = AppendixL2Cache(space, n_blocks=8)
        cache.bind(0)
        cache.access(0, 0)
        cache.access(1, 0)
        cache.bind(1)
        cache.access(0, 0)
        cache.bind(0)
        assert cache.deallocate_current_texture() == 2
        # Texture 0's entries are cleared; texture 1's survive.
        assert cache.t_table[0].l2_block == 0
        tstart_b, _ = space.l2_extent(1, 16)
        assert cache.t_table[tstart_b].l2_block != 0

    def test_deallocated_blocks_reclaimed_by_clock(self, space):
        cache = AppendixL2Cache(space, n_blocks=2)
        cache.bind(0)
        cache.access(0, 0)
        cache.access(1, 0)
        cache.deallocate_current_texture()
        # Both blocks free again: two fresh allocations, no victim search
        # beyond the cleared entries.
        assert cache.access(2, 0).kind == "l2_full_miss"
        assert cache.access(3, 0).kind == "l2_full_miss"
        assert cache.access(2, 0).kind == "l2_full_hit"
