"""Additional Appendix-transcription edge cases."""

import pytest

from repro.core.appendix import AppendixL2Cache
from repro.texture.texture import Texture
from repro.texture.tiling import AddressSpace


@pytest.fixture
def space():
    return AddressSpace([Texture("a", 64, 64)])


class TestEdgeCases:
    def test_rejects_zero_blocks(self, space):
        with pytest.raises(ValueError):
            AppendixL2Cache(space, n_blocks=0)

    def test_deallocate_requires_binding(self, space):
        cache = AppendixL2Cache(space, n_blocks=2)
        with pytest.raises(RuntimeError):
            cache.deallocate_current_texture()

    def test_clock_second_chance(self, space):
        cache = AppendixL2Cache(space, n_blocks=2)
        cache.bind(0)
        cache.access(0, 0)  # block 0, active
        cache.access(1, 0)  # block 1, active
        # Re-touch block 0 so it is MRU-ish (active already set).
        cache.access(0, 0)
        # A third virtual block must sweep: clears both active bits, wraps,
        # and takes block 0 (first inactive after the sweep).
        out = cache.access(2, 0)
        assert out.kind == "l2_full_miss"
        # Virtual block 0 lost its physical block.
        assert cache.t_table[0].l2_block == 0

    def test_partial_hit_fills_sector_only_once(self, space):
        cache = AppendixL2Cache(space, n_blocks=2)
        cache.bind(0)
        assert cache.access(0, 0).kind == "l2_full_miss"
        assert cache.access(0, 1).kind == "l2_partial_hit"
        assert cache.access(0, 1).kind == "l2_full_hit"

    def test_block_addresses_disjoint(self, space):
        cache = AppendixL2Cache(space, n_blocks=4)
        cache.bind(0)
        a = cache.access(0, 0).address
        b = cache.access(1, 0).address
        assert abs(a - b) >= cache.l2_block_size
