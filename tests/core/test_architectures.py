"""Tests for the push/pull/L2 architecture models."""

import numpy as np
import pytest

from repro.core.architectures import (
    L2CachingArchitecture,
    PullArchitecture,
    PushArchitecture,
)
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig
from repro.texture.texture import Texture
from repro.texture.tiling import pack_tile_refs
from repro.trace.trace import FrameTrace, Trace, TraceMeta


def make_trace(frame_tids):
    """A trace whose frame i touches tile (0,0,0) of each tid listed."""
    textures = [
        Texture("a", 64, 64, original_depth_bits=16),
        Texture("b", 128, 128, original_depth_bits=32),
        Texture("c", 32, 32, original_depth_bits=16),
    ]
    frames = []
    for tids in frame_tids:
        refs = pack_tile_refs(
            np.array(tids, dtype=np.int64), 0,
            np.zeros(len(tids), dtype=np.int64),
            np.zeros(len(tids), dtype=np.int64),
        )
        frames.append(
            FrameTrace(refs=refs, weights=np.ones(len(tids), dtype=np.int64),
                       n_fragments=len(tids))
        )
    meta = TraceMeta("synthetic", 8, 8, "point", len(frames))
    return Trace(meta=meta, frames=frames, textures=textures)


class TestPush:
    def test_memory_is_touched_textures_at_host_depth(self):
        trace = make_trace([[0, 1], [1]])
        stats = PushArchitecture().run(trace)
        t = trace.textures
        assert stats[0].memory_bytes == t[0].host_bytes + t[1].host_bytes
        assert stats[1].memory_bytes == t[1].host_bytes

    def test_download_only_new_textures(self):
        trace = make_trace([[0], [0, 2], [0, 2]])
        stats = PushArchitecture().run(trace)
        assert stats[0].download_bytes == trace.textures[0].host_bytes
        assert stats[1].download_bytes == trace.textures[2].host_bytes
        assert stats[2].download_bytes == 0

    def test_textures_touched_count(self):
        trace = make_trace([[0, 1, 2]])
        assert PushArchitecture().run(trace)[0].textures_touched == 3


class TestPullVsL2:
    def test_l2_never_needs_more_agp_than_pull(self):
        trace = make_trace([[0, 1, 2]] * 3)
        l1 = L1CacheConfig(size_bytes=2048)
        pull = PullArchitecture(l1).run(trace)
        l2 = L2CachingArchitecture(l1, L2CacheConfig(size_bytes=64 * 1024)).run(trace)
        assert l2.mean_agp_bytes_per_frame <= pull.mean_agp_bytes_per_frame

    def test_same_l1_behaviour_in_both(self):
        trace = make_trace([[0, 1], [1, 2]])
        l1 = L1CacheConfig(size_bytes=2048)
        pull = PullArchitecture(l1).run(trace)
        l2 = L2CachingArchitecture(l1, L2CacheConfig(size_bytes=64 * 1024)).run(trace)
        assert pull.l1_hit_rate == pytest.approx(l2.l1_hit_rate)

    def test_tlb_plumbed_through(self):
        trace = make_trace([[0, 1, 2]])
        arch = L2CachingArchitecture(
            L1CacheConfig(size_bytes=2048),
            L2CacheConfig(size_bytes=64 * 1024),
            tlb_entries=2,
        )
        res = arch.run(trace)
        assert res.frames[0].tlb is not None
