"""Differential tests: batched L2/TLB kernels vs the reference loops.

The batched engines must be *bit-identical* to the per-access reference
loops — per-frame full/partial/miss/eviction counts, hit counts, carried
replacement-policy state, and end-of-run residency state — across random
streams, every replacement policy, and chunk boundaries (including the
truncate-and-reprocess path taken when an evicted entry recurs within a
chunk).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import HierarchyConfig, MultiLevelTextureCache
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig, L2TextureCache, SetAssociativeL2Cache
from repro.core.policies import ClockPolicy, LRUPolicy
from repro.core.tlb import TextureTableTLB
from repro.texture.texture import Texture
from repro.texture.tiling import AddressSpace

from tests.core.test_hierarchy_properties import random_trace


class FakeSpace:
    """Address-space stand-in exposing only the page-table size."""

    def __init__(self, n_entries):
        self.n_entries = n_entries

    def total_l2_blocks(self, l2_tile_texels):
        return self.n_entries


def random_stream(rng, n_entries, sub_blocks, length):
    """A zipf-ish (gid, sub) stream: hot entries plus a uniform tail."""
    hot = rng.integers(0, max(n_entries // 4, 1), length)
    cold = rng.integers(0, n_entries, length)
    gids = np.where(rng.random(length) < 0.7, hot, cold)
    subs = rng.integers(0, sub_blocks, length)
    return gids, subs


def make_pair(policy, n_blocks, n_entries, chunk_size, tile=16):
    cfg = L2CacheConfig(
        size_bytes=n_blocks * tile * tile * 4, l2_tile_texels=tile, policy=policy
    )
    space = FakeSpace(n_entries)
    ref = L2TextureCache(cfg, space, use_reference=True)
    bat = L2TextureCache(cfg, space, chunk_size=chunk_size)
    return ref, bat


def assert_l2_state_equal(ref, bat):
    np.testing.assert_array_equal(ref._t_block, bat._t_block)
    np.testing.assert_array_equal(ref._t_sectors, bat._t_sectors)
    np.testing.assert_array_equal(ref._brl_t_index, bat._brl_t_index)
    assert ref._free == bat._free
    assert ref._next_unused == bat._next_unused
    if isinstance(ref.policy, ClockPolicy):
        np.testing.assert_array_equal(ref.policy.active, bat.policy.active)
        assert ref.policy.hand == bat.policy.hand
        assert ref.policy.search_lengths == bat.policy.search_lengths
    if isinstance(ref.policy, LRUPolicy):
        np.testing.assert_array_equal(ref.policy._stamp, bat.policy._stamp)
        assert ref.policy._clock == bat.policy._clock


class TestL2Differential:
    @given(
        seed=st.integers(0, 10_000),
        policy=st.sampled_from(["clock", "lru", "fifo", "random"]),
        n_blocks=st.integers(1, 24),
        n_entries=st.integers(4, 80),
        chunk_size=st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_counts_and_state(
        self, seed, policy, n_blocks, n_entries, chunk_size
    ):
        rng = np.random.default_rng(seed)
        ref, bat = make_pair(policy, n_blocks, n_entries, chunk_size)
        for _ in range(int(rng.integers(1, 4))):
            gids, subs = random_stream(
                rng, n_entries, ref.config.sub_blocks_per_block, int(rng.integers(0, 250))
            )
            assert ref.access_blocks(gids, subs) == bat.access_blocks(gids, subs)
        assert_l2_state_equal(ref, bat)

    def test_chunk_boundary_independence(self):
        # The same stream must give the same answer for every chunking,
        # including chunk_size=1 (pure allocation loop).
        rng = np.random.default_rng(7)
        gids, subs = random_stream(rng, 40, 16, 500)
        baseline = None
        for chunk_size in (1, 3, 17, 500, 1 << 15):
            ref, bat = make_pair("clock", 8, 40, chunk_size)
            got = bat.access_blocks(gids, subs)
            want = ref.access_blocks(gids, subs)
            assert got == want
            if baseline is None:
                baseline = got
            assert got == baseline

    def test_eviction_reaccess_truncation(self):
        # A tiny cache under a cyclic stream forces an evicted gid to recur
        # inside the same chunk — the truncate-and-reprocess path.
        ref, bat = make_pair("clock", 2, 8, chunk_size=64)
        gids = np.array([0, 1, 2, 0, 1, 2, 0, 1, 2] * 5)
        subs = np.zeros(len(gids), dtype=np.int64)
        assert ref.access_blocks(gids, subs) == bat.access_blocks(gids, subs)
        assert_l2_state_equal(ref, bat)

    def test_deallocate_matches_reference(self):
        space = AddressSpace([Texture("a", 64, 64), Texture("b", 128, 128)])
        cfg = L2CacheConfig(size_bytes=16 * 1024, l2_tile_texels=16)
        ref = L2TextureCache(cfg, space, use_reference=True)
        bat = L2TextureCache(cfg, space)
        rng = np.random.default_rng(3)
        n_entries = space.total_l2_blocks(16)
        gids = rng.integers(0, n_entries, 300)
        subs = rng.integers(0, cfg.sub_blocks_per_block, 300)
        ref.access_blocks(gids, subs)
        bat.access_blocks(gids, subs)
        assert ref.deallocate_texture(0) == bat.deallocate_texture(0)
        assert ref.deallocate_texture(1) == bat.deallocate_texture(1)
        assert_l2_state_equal(ref, bat)


class TestSetAssociativeDifferential:
    @given(
        seed=st.integers(0, 10_000),
        ways=st.sampled_from([1, 2, 4]),
        sets_factor=st.integers(1, 8),
        n_entries=st.integers(4, 80),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_counts_and_state(self, seed, ways, sets_factor, n_entries):
        rng = np.random.default_rng(seed)
        n_blocks = ways * sets_factor
        cfg = L2CacheConfig(size_bytes=n_blocks * 16 * 16 * 4, l2_tile_texels=16)
        space = FakeSpace(n_entries)
        ref = SetAssociativeL2Cache(cfg, space, ways=ways, use_reference=True)
        bat = SetAssociativeL2Cache(cfg, space, ways=ways)
        for _ in range(int(rng.integers(1, 4))):
            gids, subs = random_stream(
                rng, n_entries, cfg.sub_blocks_per_block, int(rng.integers(0, 250))
            )
            assert ref.access_blocks(gids, subs) == bat.access_blocks(gids, subs)
        assert ref._sets == bat._sets
        assert ref._sectors == bat._sectors


class TestTLBDifferential:
    @given(
        seed=st.integers(0, 10_000),
        cap=st.integers(1, 16),
        policy=st.sampled_from(["round_robin", "lru"]),
        universe=st.integers(2, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_hits_and_state(self, seed, cap, policy, universe):
        rng = np.random.default_rng(seed)
        ref = TextureTableTLB(cap, policy, use_reference=True)
        bat = TextureTableTLB(cap, policy)
        for _ in range(int(rng.integers(1, 5))):
            gids = rng.integers(0, universe, int(rng.integers(0, 300)))
            assert ref.access_frame(gids) == bat.access_frame(gids)
        assert ref._entries == bat._entries
        assert ref._hand == bat._hand


class TestHierarchyEndToEnd:
    def test_full_hierarchy_matches_reference_on_trace(self):
        # End-to-end over a multi-frame trace: every per-frame stat equal.
        space = AddressSpace([Texture("a", 64, 64), Texture("b", 128, 128)])
        trace = random_trace(space, seed=11, n_frames=4, refs_per_frame=400)
        config = HierarchyConfig(
            l1=L1CacheConfig(size_bytes=2048),
            l2=L2CacheConfig(size_bytes=16 * 1024, l2_tile_texels=16),
            tlb_entries=4,
        )
        ref = MultiLevelTextureCache(config, space, use_reference=True).run_trace(
            trace
        )
        bat = MultiLevelTextureCache(config, space).run_trace(trace)
        for rf, bf in zip(ref.frames, bat.frames):
            assert rf == bf


def test_sector_bits_overflow_rejected():
    # 64x64 tiles would need 256 sector bits; the uint64 bit-vector cannot
    # represent them and `1 << sub` would silently wrap.
    with pytest.raises(ValueError, match="sector bit"):
        L2CacheConfig(size_bytes=8 << 20, l2_tile_texels=64)


def test_32x32_tiles_still_accepted():
    cfg = L2CacheConfig(size_bytes=8 << 20, l2_tile_texels=32)
    assert cfg.sub_blocks_per_block == 64
