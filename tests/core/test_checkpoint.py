"""Checkpointed simulation: snapshot/restore and the on-disk format.

The load-bearing claim is bit-identity: a run interrupted at any frame
boundary and resumed from its checkpoint must produce exactly the frames —
and exactly the simulation-store bytes — of an uninterrupted run, for both
engines, every replacement policy, and with the faulty-link RNG mid-stream.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import HierarchyConfig, MultiLevelTextureCache
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig
from repro.errors import CheckpointCorruptError, CorruptCheckpointWarning
from repro.reliability import checkpoint as ckpt
from repro.reliability.chaos import ChaosPolicy, corrupt_file
from repro.reliability.faults import FaultModel
from repro.reliability.transfer import TransferPolicy
from repro.texture.texture import Texture
from repro.texture.tiling import AddressSpace, pack_tile_refs
from repro.trace.trace import FrameTrace, Trace, TraceMeta
from repro.vt import VtConfig

N_FRAMES = 6


def make_space():
    return AddressSpace([Texture("a", 64, 64), Texture("b", 128, 128)])


def random_trace(space, seed, n_frames=N_FRAMES, refs_per_frame=150):
    rng = np.random.default_rng(seed)
    frames = []
    for _ in range(n_frames):
        tid = int(rng.integers(space.texture_count))
        tex = space.textures[tid]
        mip = int(rng.integers(min(3, tex.level_count)))
        w, h = tex.level_dims(mip)
        tw, th = max(w // 4, 1), max(h // 4, 1)
        steps = rng.integers(-1, 2, size=(refs_per_frame, 2))
        pos = np.cumsum(steps, axis=0)
        refs = pack_tile_refs(
            tid, mip, np.mod(pos[:, 1], th), np.mod(pos[:, 0], tw), check=False
        )
        frames.append(
            FrameTrace(refs, np.ones(len(refs), dtype=np.int64), len(refs))
        )
    meta = TraceMeta("ckpt-prop", 16, 16, "point", n_frames)
    return Trace(meta=meta, frames=frames, textures=space.textures)


def make_vt_config():
    """A small paged config exercising every VT state carrier: residency
    churn, in-flight banking, retries, chaos kills/stalls, and page-store
    bitflips (quarantine + refetch)."""
    return VtConfig(
        page_texels=16,
        max_resident_pages=24,
        max_in_flight=4,
        frame_budget_us=400.0,
        fetch_latency_us=30.0,
        timeout_frames=2,
        fault_model=FaultModel(drop_rate=0.25, spike_rate=0.2, spike_us=50.0, seed=5),
        policy=TransferPolicy(max_retries=2, backoff_base_us=20.0),
        chaos=ChaosPolicy(
            seed=3,
            kill_rate=0.6,
            stall_rate=0.2,
            stall_s=0.0001,
            max_attempt=1,
            bitflip_rate=0.05,
        ),
    )


def make_config(policy, faulty, vt=False):
    return HierarchyConfig(
        l1=L1CacheConfig(size_bytes=2048),
        l2=L2CacheConfig(size_bytes=32 * 1024, l2_tile_texels=16, policy=policy),
        tlb_entries=4,
        fault_model=FaultModel(drop_rate=0.05, seed=9) if faulty else None,
        transfer_policy=TransferPolicy(max_retries=2) if faulty else None,
        vt=make_vt_config() if vt else None,
    )


class TestSnapshotRestoreProperty:
    @pytest.mark.parametrize("use_reference", [True, False], ids=["ref", "batched"])
    @pytest.mark.parametrize("policy", ["clock", "lru", "fifo", "random"])
    @given(
        seed=st.integers(0, 10_000),
        boundary=st.integers(1, N_FRAMES - 1),
        faulty=st.booleans(),
        vt=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_resume_at_any_boundary_is_bit_identical(
        self, policy, use_reference, seed, boundary, faulty, vt
    ):
        space = make_space()
        trace = random_trace(space, seed)
        config = make_config(policy, faulty, vt)
        expected = MultiLevelTextureCache(
            config, space, use_reference=use_reference
        ).run_trace(trace)

        first = MultiLevelTextureCache(config, space, use_reference=use_reference)
        head = [first.run_frame(f) for f in trace.frames[:boundary]]
        state = first.snapshot_state()

        # A brand-new simulator restored from the snapshot must continue
        # exactly where the first one stopped.
        second = MultiLevelTextureCache(config, space, use_reference=use_reference)
        second.restore_state(state)
        tail = [second.run_frame(f) for f in trace.frames[boundary:]]
        assert head + tail == expected.frames

    @given(
        seed=st.integers(0, 10_000),
        boundary=st.integers(1, N_FRAMES - 1),
        vt=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_snapshot_round_trips_through_disk(
        self, tmp_path_factory, seed, boundary, vt
    ):
        space = make_space()
        trace = random_trace(space, seed)
        config = make_config("clock", faulty=True, vt=vt)
        path = tmp_path_factory.mktemp("ckpt") / "run.ckpt"

        sim = MultiLevelTextureCache(config, space)
        frames = [sim.run_frame(f) for f in trace.frames[:boundary]]
        key = ckpt.run_key(trace, config, sim.engine)
        ckpt.write_checkpoint(
            path,
            key=key,
            frame_index=boundary,
            n_frames=N_FRAMES,
            frames=frames,
            state=sim.snapshot_state(),
        )

        resumed = MultiLevelTextureCache(config, space).run_trace(
            trace, checkpoint_path=path, resume=True
        )
        expected = MultiLevelTextureCache(config, space).run_trace(trace)
        assert resumed.frames == expected.frames


class TestRunTraceCheckpointing:
    def test_run_trace_writes_and_resumes_from_checkpoint(self, tmp_path):
        space = make_space()
        trace = random_trace(space, seed=1)
        config = make_config("lru", faulty=False)
        path = tmp_path / "run.ckpt"

        full = MultiLevelTextureCache(config, space).run_trace(
            trace, checkpoint_path=path, checkpoint_every=2
        )
        # The last intermediate checkpoint (frame 4 of 6) is still on disk;
        # resuming replays only the tail and must agree exactly.
        loaded = ckpt.read_checkpoint(
            path, expected_key=ckpt.run_key(trace, config, "batched")
        )
        assert loaded.frame_index == 4
        assert loaded.frames == full.frames[:4]

        resumed = MultiLevelTextureCache(config, space).run_trace(
            trace, checkpoint_path=path, resume=True
        )
        assert resumed.frames == full.frames

    def test_resumed_run_produces_identical_store_bytes(self, tmp_path, monkeypatch):
        from repro.experiments import simstore

        space = make_space()
        trace = random_trace(space, seed=2)
        config = make_config("clock", faulty=True)
        path = tmp_path / "run.ckpt"

        full = MultiLevelTextureCache(config, space).run_trace(
            trace, checkpoint_path=path, checkpoint_every=3
        )
        resumed = MultiLevelTextureCache(config, space).run_trace(
            trace, checkpoint_path=path, resume=True
        )

        monkeypatch.setenv("REPRO_SIM_CACHE", str(tmp_path / "a"))
        path_a = simstore.save(trace, config, full)
        monkeypatch.setenv("REPRO_SIM_CACHE", str(tmp_path / "b"))
        path_b = simstore.save(trace, config, resumed)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_checkpoint_writes_are_byte_deterministic(self, tmp_path):
        space = make_space()
        trace = random_trace(space, seed=3)
        config = make_config("fifo", faulty=False)
        sim = MultiLevelTextureCache(config, space)
        frames = [sim.run_frame(f) for f in trace.frames[:2]]
        kwargs = dict(
            key=ckpt.run_key(trace, config, sim.engine),
            frame_index=2,
            n_frames=N_FRAMES,
            frames=frames,
            state=sim.snapshot_state(),
        )
        a = ckpt.write_checkpoint(tmp_path / "a.ckpt", **kwargs)
        b = ckpt.write_checkpoint(tmp_path / "b.ckpt", **kwargs)
        assert a.read_bytes() == b.read_bytes()


class TestDamageHandling:
    def _written(self, tmp_path):
        space = make_space()
        trace = random_trace(space, seed=4)
        config = make_config("clock", faulty=False)
        sim = MultiLevelTextureCache(config, space)
        frames = [sim.run_frame(f) for f in trace.frames[:3]]
        key = ckpt.run_key(trace, config, sim.engine)
        path = ckpt.write_checkpoint(
            tmp_path / "run.ckpt",
            key=key,
            frame_index=3,
            n_frames=N_FRAMES,
            frames=frames,
            state=sim.snapshot_state(),
        )
        return trace, config, key, path

    @pytest.mark.parametrize("mode", ["bitflip", "truncate"])
    def test_corrupt_checkpoint_quarantined_on_tolerant_load(self, tmp_path, mode):
        trace, config, key, path = self._written(tmp_path)
        corrupt_file(path, seed=5, mode=mode)
        with pytest.raises(CheckpointCorruptError):
            ckpt.read_checkpoint(path, expected_key=key)
        with pytest.warns(CorruptCheckpointWarning):
            assert ckpt.load_checkpoint(path, expected_key=key) is None
        assert not path.exists()
        assert list((tmp_path / "quarantine").iterdir())

    def test_corrupt_checkpoint_restarts_run_from_scratch(self, tmp_path):
        space = make_space()
        trace, config, key, path = self._written(tmp_path)
        corrupt_file(path, seed=6)
        with pytest.warns(CorruptCheckpointWarning):
            result = MultiLevelTextureCache(config, space).run_trace(
                trace, checkpoint_path=path, resume=True
            )
        expected = MultiLevelTextureCache(config, space).run_trace(trace)
        assert result.frames == expected.frames

    def test_key_mismatch_raises_even_on_tolerant_load(self, tmp_path):
        trace, config, key, path = self._written(tmp_path)
        with pytest.raises(CheckpointCorruptError):
            ckpt.load_checkpoint(path, expected_key=key + "|other")
        assert path.exists()  # a caller error is not bit rot: nothing moved

    def test_missing_checkpoint_loads_as_none(self, tmp_path):
        assert ckpt.load_checkpoint(tmp_path / "absent.ckpt") is None
