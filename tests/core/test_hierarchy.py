"""Integration tests for the multi-level hierarchy (Figure 7 control flow)."""

import numpy as np
import pytest

from repro.core.hierarchy import HierarchyConfig, MultiLevelTextureCache
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig
from repro.texture.texture import Texture
from repro.texture.tiling import AddressSpace, pack_tile_refs
from repro.trace.trace import FrameTrace, Trace, TraceMeta


@pytest.fixture
def space():
    return AddressSpace([Texture("a", 64, 64), Texture("b", 64, 64)])


def frame_of(refs):
    refs = np.asarray(refs, dtype=np.int64)
    return FrameTrace(refs=refs, weights=np.ones(len(refs), dtype=np.int64),
                      n_fragments=len(refs))


def trace_of(space, frames):
    return Trace(
        meta=TraceMeta("synthetic", 8, 8, "point", len(frames)),
        frames=frames,
        textures=space.textures,
    )


class TestConfigValidation:
    def test_tlb_requires_l2(self):
        with pytest.raises(ValueError):
            HierarchyConfig(l1=L1CacheConfig(), l2=None, tlb_entries=4)


class TestPullMode:
    def test_l1_misses_are_agp_bytes(self, space):
        sim = MultiLevelTextureCache(
            HierarchyConfig(l1=L1CacheConfig(size_bytes=2048)), space
        )
        refs = pack_tile_refs(0, 0, np.zeros(4, dtype=np.int64), np.arange(4))
        stats = sim.run_frame(frame_of(refs))
        assert stats.l1_misses == 4
        assert stats.agp_bytes == 4 * 64
        assert stats.l2 is None


class TestL2Mode:
    def _sim(self, space, l2_blocks=8, tlb=None):
        cfg = HierarchyConfig(
            l1=L1CacheConfig(size_bytes=2048),
            l2=L2CacheConfig(size_bytes=l2_blocks * 1024, l2_tile_texels=16),
            tlb_entries=tlb,
        )
        return MultiLevelTextureCache(cfg, space)

    def test_l2_absorbs_rereferences_after_l1_eviction(self, space):
        sim = self._sim(space)
        # 40 distinct tiles spanning 4 L2 blocks: they overflow a 2 KB L1
        # (32 lines) but fit easily in the 8-block L2.
        xs = np.arange(40) % 16
        ys = np.arange(40) // 16
        refs = pack_tile_refs(0, 0, ys, xs)
        frame = frame_of(np.concatenate([refs, refs]))
        stats = sim.run_frame(frame)
        assert stats.l1_misses > 40  # second pass misses L1 again
        # But the second pass hits L2 (sectors already downloaded).
        assert stats.l2.full_hits > 0
        assert stats.agp_bytes < stats.l1_misses * 64

    def test_agp_counts_only_host_downloads(self, space):
        sim = self._sim(space)
        refs = pack_tile_refs(0, 0, np.zeros(2, dtype=np.int64), np.array([0, 1]))
        stats = sim.run_frame(frame_of(refs))
        # Both sub-blocks downloaded from host (1 full miss + 1 partial hit).
        assert stats.agp_bytes == 2 * 64
        assert stats.local_l2_bytes == 0

    def test_tlb_sees_l1_miss_stream(self, space):
        sim = self._sim(space, tlb=4)
        refs = pack_tile_refs(0, 0, np.zeros(3, dtype=np.int64), np.array([0, 1, 2]))
        stats = sim.run_frame(frame_of(refs))
        assert stats.tlb is not None
        assert stats.tlb.accesses == stats.l1_misses

    def test_inclusion_not_guaranteed(self, space):
        """An L1-resident tile can survive its L2 block's eviction (§5.4.2
        footnote): the next access hits L1 and never consults L2."""
        sim = self._sim(space, l2_blocks=1)
        a = pack_tile_refs(0, 0, np.array([0]), np.array([0]))
        b = pack_tile_refs(0, 0, np.array([4]), np.array([0]))  # different L2 block
        sim.run_frame(frame_of(np.array([a[0], b[0]])))  # b evicted a's block
        stats = sim.run_frame(frame_of(np.array([a[0]])))
        assert stats.l1_misses == 0  # still in L1 even though L2 evicted it


class TestTraceRun:
    def test_aggregates_over_frames(self, space):
        sim = MultiLevelTextureCache(
            HierarchyConfig(
                l1=L1CacheConfig(size_bytes=2048),
                l2=L2CacheConfig(size_bytes=8 * 1024, l2_tile_texels=16),
                tlb_entries=2,
            ),
            space,
        )
        refs = pack_tile_refs(0, 0, np.zeros(4, dtype=np.int64), np.arange(4))
        trace = trace_of(space, [frame_of(refs), frame_of(refs)])
        result = sim.run_trace(trace)
        assert len(result.frames) == 2
        # Frame 2 is all L1 hits (tiny working set).
        assert result.frames[1].l1_misses == 0
        assert result.total_texel_reads == 8
        assert 0 < result.l1_hit_rate < 1
        assert result.agp_bytes_per_frame().tolist()[1] == 0

    def test_conditional_l2_rates(self, space):
        sim = MultiLevelTextureCache(
            HierarchyConfig(
                l1=L1CacheConfig(size_bytes=2048),
                l2=L2CacheConfig(size_bytes=8 * 1024, l2_tile_texels=16),
            ),
            space,
        )
        refs = pack_tile_refs(0, 0, np.zeros(4, dtype=np.int64), np.arange(4))
        result = sim.run_trace(trace_of(space, [frame_of(refs)]))
        # 1 full miss + 3 partial hits over 4 L1 misses.
        assert result.l2_full_hit_rate == pytest.approx(0.0)
        assert result.l2_partial_hit_rate == pytest.approx(0.75)

    def test_tlb_rate_nan_free_without_tlb(self, space):
        sim = MultiLevelTextureCache(
            HierarchyConfig(l1=L1CacheConfig(size_bytes=2048)), space
        )
        refs = pack_tile_refs(0, 0, np.array([0]), np.array([0]))
        result = sim.run_trace(trace_of(space, [frame_of(refs)]))
        assert result.tlb_hit_rate == 0.0
