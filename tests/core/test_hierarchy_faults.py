"""Fault injection through the cache hierarchy's download path."""

import numpy as np
import pytest

from repro.core.hierarchy import HierarchyConfig, MultiLevelTextureCache
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig
from repro.experiments.config import Scale
from repro.experiments.traces import get_trace
from repro.reliability import FaultModel, TransferPolicy
from repro.texture.sampler import FilterMode

MICRO = Scale(width=64, height=48, frames=2, detail=0.2, name="micro")


def run(trace, fault_model=None, policy=None, l2_bytes=None):
    config = HierarchyConfig(
        l1=L1CacheConfig(size_bytes=2048),
        l2=L2CacheConfig(size_bytes=l2_bytes) if l2_bytes else None,
        fault_model=fault_model,
        transfer_policy=policy,
    )
    return MultiLevelTextureCache(config, trace.address_space).run_trace(trace)


@pytest.fixture(scope="module")
def trace():
    return get_trace("city", MICRO, FilterMode.POINT)


class TestFaultInjection:
    def test_policy_without_model_rejected(self):
        with pytest.raises(ValueError):
            HierarchyConfig(
                l1=L1CacheConfig(size_bytes=2048),
                transfer_policy=TransferPolicy(),
            )

    def test_no_fault_model_means_no_transfer_stats(self, trace):
        res = run(trace)
        assert all(f.transfer is None for f in res.frames)
        assert res.total_retried_transfers == 0
        assert res.total_retry_bytes == 0
        assert res.degraded_frames == 0

    def test_zero_rate_matches_baseline_exactly(self, trace):
        base = run(trace)
        faulted = run(trace, fault_model=FaultModel(seed=5))
        assert faulted.mean_agp_bytes_per_frame == base.mean_agp_bytes_per_frame
        assert faulted.mean_effective_agp_bytes_per_frame == base.mean_agp_bytes_per_frame
        assert faulted.total_retried_transfers == 0

    def test_baseline_accounting_untouched_under_faults(self, trace):
        base = run(trace)
        faulted = run(
            trace, fault_model=FaultModel(drop_rate=0.2, seed=1)
        )
        # Fault-free metrics stay identical; only retry traffic is added.
        assert faulted.l1_hit_rate == base.l1_hit_rate
        assert faulted.mean_agp_bytes_per_frame == base.mean_agp_bytes_per_frame
        assert faulted.total_retried_transfers > 0
        assert (
            faulted.mean_effective_agp_bytes_per_frame
            > base.mean_agp_bytes_per_frame
        )

    def test_same_seed_reproducible(self, trace):
        a = run(trace, fault_model=FaultModel(drop_rate=0.1, seed=11))
        b = run(trace, fault_model=FaultModel(drop_rate=0.1, seed=11))
        assert a.total_retried_transfers == b.total_retried_transfers
        assert a.total_stale_blocks == b.total_stale_blocks
        assert [f.retry_bytes for f in a.frames] == [f.retry_bytes for f in b.frames]

    def test_transfers_follow_l2_host_downloads(self, trace):
        res = run(
            trace,
            fault_model=FaultModel(drop_rate=0.1, seed=2),
            l2_bytes=128 * 1024,
        )
        for f in res.frames:
            assert f.transfer.requested_blocks == f.l2.host_downloads

    def test_transfers_follow_l1_misses_in_pull(self, trace):
        res = run(trace, fault_model=FaultModel(drop_rate=0.1, seed=2))
        for f in res.frames:
            assert f.transfer.requested_blocks == f.l1_misses

    def test_certain_failure_degrades_frames(self, trace):
        res = run(
            trace,
            fault_model=FaultModel(drop_rate=1.0, seed=0),
            policy=TransferPolicy(max_retries=1),
        )
        assert res.degraded_frames == len(res.frames)
        assert res.total_stale_blocks == res.total_l1_misses
