"""Property tests for hierarchy-level invariants.

These capture the paper's structural claims as machine-checked properties
over randomized access streams: the L2 architecture never needs more host
bandwidth than the pull architecture, L2 outcome counts are conserved, and
the L2 never allocates more physical blocks than it has.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import HierarchyConfig, MultiLevelTextureCache
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig, L2TextureCache
from repro.texture.texture import Texture
from repro.texture.tiling import AddressSpace, pack_tile_refs
from repro.trace.trace import FrameTrace, Trace, TraceMeta


@pytest.fixture(scope="module")
def space():
    return AddressSpace([Texture("a", 64, 64), Texture("b", 128, 128)])


def random_trace(space, seed, n_frames=3, refs_per_frame=200):
    """A random-walk tile stream over the texture set (locality-bearing)."""
    rng = np.random.default_rng(seed)
    frames = []
    for _ in range(n_frames):
        tid = int(rng.integers(space.texture_count))
        tex = space.textures[tid]
        mip = int(rng.integers(min(3, tex.level_count)))
        w, h = tex.level_dims(mip)
        tw, th = max(w // 4, 1), max(h // 4, 1)
        steps = rng.integers(-1, 2, size=(refs_per_frame, 2))
        pos = np.cumsum(steps, axis=0)
        xs = np.mod(pos[:, 0], tw)
        ys = np.mod(pos[:, 1], th)
        refs = pack_tile_refs(tid, mip, ys, xs, check=False)
        frames.append(
            FrameTrace(refs, np.ones(len(refs), dtype=np.int64), len(refs))
        )
    meta = TraceMeta("prop", 16, 16, "point", n_frames)
    return Trace(meta=meta, frames=frames, textures=space.textures)


streams = st.integers(0, 10_000)


class TestArchitecturalInvariants:
    @given(streams, st.sampled_from([2048, 16384]), st.sampled_from([8, 32, 128]))
    @settings(max_examples=25, deadline=None)
    def test_property_l2_agp_never_exceeds_pull(self, seed, l1_bytes, l2_blocks):
        space = AddressSpace([Texture("a", 64, 64), Texture("b", 128, 128)])
        trace = random_trace(space, seed)
        pull = MultiLevelTextureCache(
            HierarchyConfig(l1=L1CacheConfig(size_bytes=l1_bytes)), space
        ).run_trace(trace)
        l2 = MultiLevelTextureCache(
            HierarchyConfig(
                l1=L1CacheConfig(size_bytes=l1_bytes),
                l2=L2CacheConfig(size_bytes=l2_blocks * 1024, l2_tile_texels=16),
            ),
            space,
        ).run_trace(trace)
        # Same L1 in both: identical miss streams; every L2 full hit removes
        # one host download, so the L2 architecture's AGP traffic can never
        # exceed the pull architecture's.
        assert pull.total_l1_misses == l2.total_l1_misses
        for pf, lf in zip(pull.frames, l2.frames):
            assert lf.agp_bytes <= pf.agp_bytes

    @given(streams)
    @settings(max_examples=25, deadline=None)
    def test_property_l2_outcomes_conserved(self, seed):
        space = AddressSpace([Texture("a", 64, 64), Texture("b", 128, 128)])
        trace = random_trace(space, seed)
        sim = MultiLevelTextureCache(
            HierarchyConfig(
                l1=L1CacheConfig(size_bytes=2048),
                l2=L2CacheConfig(size_bytes=32 * 1024, l2_tile_texels=16),
            ),
            space,
        )
        for frame_stats in (sim.run_frame(f) for f in trace.frames):
            l2 = frame_stats.l2
            assert (
                l2.full_hits + l2.partial_hits + l2.full_misses == l2.accesses
            )
            assert l2.accesses == frame_stats.l1_misses

    @given(streams, st.sampled_from([1, 4, 16]))
    @settings(max_examples=25, deadline=None)
    def test_property_resident_blocks_bounded(self, seed, n_blocks):
        space = AddressSpace([Texture("a", 64, 64), Texture("b", 128, 128)])
        trace = random_trace(space, seed)
        cache = L2TextureCache(
            L2CacheConfig(size_bytes=n_blocks * 1024, l2_tile_texels=16), space
        )
        for frame in trace.frames:
            cache.access_frame(frame.refs)
            assert cache.resident_blocks <= n_blocks

    @given(streams)
    @settings(max_examples=15, deadline=None)
    def test_property_bigger_l1_never_hits_less(self, seed):
        space = AddressSpace([Texture("a", 64, 64), Texture("b", 128, 128)])
        trace = random_trace(space, seed)
        rates = []
        for size in (2048, 8192, 32768):
            res = MultiLevelTextureCache(
                HierarchyConfig(l1=L1CacheConfig(size_bytes=size)), space
            ).run_trace(trace)
            rates.append(res.l1_hit_rate)
        # LRU set-associative caches of growing size+sets are not strictly
        # inclusive, but on locality-bearing walks the trend must hold.
        assert rates[0] <= rates[2] + 0.02

    @given(streams)
    @settings(max_examples=15, deadline=None)
    def test_property_sector_mapping_monotone(self, seed):
        """Replaying a frame immediately can only improve L2 outcomes."""
        space = AddressSpace([Texture("a", 64, 64), Texture("b", 128, 128)])
        trace = random_trace(space, seed, n_frames=1)
        cache = L2TextureCache(
            L2CacheConfig(size_bytes=1024 * 1024, l2_tile_texels=16), space
        )
        first = cache.access_frame(trace.frames[0].refs)
        second = cache.access_frame(trace.frames[0].refs)
        # With a cache big enough to avoid evictions, the replay is all
        # full hits.
        assert first.evictions == 0
        assert second.full_hits == second.accesses
