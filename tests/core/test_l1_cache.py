"""Unit and property tests for the L1 cache simulator.

The load-bearing test here is the differential property test: the
vectorized grouped-scan LRU must match the explicit per-access reference
implementation on arbitrary streams, including across frame boundaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.l1_cache import L1CacheConfig, L1CacheSim


def ones(n):
    return np.ones(n, dtype=np.int64)


class TestConfig:
    def test_defaults(self):
        cfg = L1CacheConfig()
        assert cfg.n_sets == 128
        assert cfg.n_lines == 256

    def test_2kb_two_way(self):
        cfg = L1CacheConfig(size_bytes=2048)
        assert cfg.n_sets == 16

    def test_rejects_non_divisible(self):
        with pytest.raises(ValueError):
            L1CacheConfig(size_bytes=1000)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ValueError):
            L1CacheConfig(size_bytes=3 * 128, ways=1, line_bytes=64)

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            L1CacheConfig(ways=0)


class TestBasicBehaviour:
    def _sim(self, ways=2, sets=4, reference=False):
        cfg = L1CacheConfig(size_bytes=sets * ways * 64, ways=ways)
        return L1CacheSim(cfg, use_reference=reference)

    def test_cold_miss_then_hit(self):
        sim = self._sim()
        refs = np.array([10, 10], dtype=np.int64)
        res = sim.access_frame(refs, ones(2), np.zeros(2, dtype=np.int64))
        assert res.misses == 1
        assert res.miss_refs.tolist() == [10]

    def test_two_way_holds_two_tags(self):
        sim = self._sim()
        refs = np.array([1, 2, 1, 2], dtype=np.int64)
        res = sim.access_frame(refs, ones(4), np.zeros(4, dtype=np.int64))
        assert res.misses == 2  # both cold misses, then both hit

    def test_lru_eviction_order(self):
        sim = self._sim()
        # 1, 2, 3 -> 3 evicts 1 (LRU); re-access 1 misses, 3 hits, 2 evicted.
        refs = np.array([1, 2, 3, 1, 3], dtype=np.int64)
        res = sim.access_frame(refs, ones(5), np.zeros(5, dtype=np.int64))
        assert res.misses == 4
        assert res.miss_refs.tolist() == [1, 2, 3, 1]

    def test_hit_promotes_to_mru(self):
        sim = self._sim()
        # 1, 2, then hit 1 (promote), then 3 evicts 2 not 1.
        refs = np.array([1, 2, 1, 3, 1], dtype=np.int64)
        res = sim.access_frame(refs, ones(5), np.zeros(5, dtype=np.int64))
        assert res.miss_refs.tolist() == [1, 2, 3]

    def test_sets_are_independent(self):
        sim = self._sim()
        refs = np.array([1, 1, 1, 1], dtype=np.int64)
        sets = np.array([0, 1, 0, 1], dtype=np.int64)
        res = sim.access_frame(refs, ones(4), sets)
        assert res.misses == 2  # one cold miss per set

    def test_state_persists_across_frames(self):
        sim = self._sim()
        sim.access_frame(np.array([1, 2]), ones(2), np.zeros(2, dtype=np.int64))
        res = sim.access_frame(np.array([1, 2]), ones(2), np.zeros(2, dtype=np.int64))
        assert res.misses == 0

    def test_reset_invalidates(self):
        sim = self._sim()
        sim.access_frame(np.array([1]), ones(1), np.zeros(1, dtype=np.int64))
        sim.reset()
        res = sim.access_frame(np.array([1]), ones(1), np.zeros(1, dtype=np.int64))
        assert res.misses == 1

    def test_direct_mapped(self):
        sim = self._sim(ways=1)
        refs = np.array([1, 2, 1], dtype=np.int64)
        res = sim.access_frame(refs, ones(3), np.zeros(3, dtype=np.int64))
        assert res.misses == 3  # 2 evicts 1 in a direct-mapped set

    def test_empty_frame(self):
        sim = self._sim()
        res = sim.access_frame(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        assert res.misses == 0
        assert res.texel_hit_rate == 1.0

    def test_mismatched_lengths_raise(self):
        sim = self._sim()
        with pytest.raises(ValueError):
            sim.access_frame(np.array([1, 2]), ones(1), np.zeros(2, dtype=np.int64))


class TestWeightAccounting:
    def test_collapsed_weights_count_as_hits(self):
        sim = L1CacheSim(L1CacheConfig(size_bytes=2048))
        refs = np.array([7], dtype=np.int64)
        res = sim.access_frame(refs, np.array([10], dtype=np.int64),
                               np.zeros(1, dtype=np.int64))
        assert res.texel_reads == 10
        assert res.misses == 1
        assert res.texel_hit_rate == pytest.approx(0.9)

    def test_miss_bytes(self):
        sim = L1CacheSim(L1CacheConfig(size_bytes=2048))
        refs = np.array([1, 2, 3], dtype=np.int64)
        res = sim.access_frame(refs, ones(3), np.zeros(3, dtype=np.int64))
        assert res.miss_bytes == 3 * 64


class TestVectorizedMatchesReference:
    """The vectorized scan and the reference loop must agree exactly."""

    @given(
        st.integers(1, 2),  # ways
        st.integers(0, 3),  # log2 sets
        st.lists(st.integers(0, 20), min_size=0, max_size=200),
        st.integers(1, 4),  # frames to split into
    )
    @settings(max_examples=150, deadline=None)
    def test_property_equivalence(self, ways, log_sets, tags, n_frames):
        n_sets = 1 << log_sets
        cfg = L1CacheConfig(size_bytes=n_sets * ways * 64, ways=ways)
        fast = L1CacheSim(cfg)
        ref = L1CacheSim(cfg, use_reference=True)
        refs = np.array(tags, dtype=np.int64)
        sets = refs % n_sets
        # Split the stream into frames to also exercise state carry-over.
        bounds = np.linspace(0, len(refs), n_frames + 1).astype(int)
        for a, b in zip(bounds, bounds[1:]):
            r_fast = fast.access_frame(refs[a:b], ones(b - a), sets[a:b])
            r_ref = ref.access_frame(refs[a:b], ones(b - a), sets[a:b])
            assert r_fast.misses == r_ref.misses
            assert r_fast.miss_refs.tolist() == r_ref.miss_refs.tolist()

    def test_adversarial_interleaving(self):
        # Same tag in different sets, plus rapid alternation.
        cfg = L1CacheConfig(size_bytes=2 * 2 * 64, ways=2)
        fast = L1CacheSim(cfg)
        ref = L1CacheSim(cfg, use_reference=True)
        refs = np.array([5, 5, 6, 5, 7, 6, 5, 7, 8, 5, 5, 8], dtype=np.int64)
        sets = np.array([0, 1, 0, 0, 1, 0, 1, 1, 0, 0, 1, 0], dtype=np.int64)
        a = fast.access_frame(refs, ones(len(refs)), sets)
        b = ref.access_frame(refs, ones(len(refs)), sets)
        assert a.misses == b.misses
        assert a.miss_refs.tolist() == b.miss_refs.tolist()


class TestGeneralAssociativity:
    def test_four_way_keeps_four(self):
        cfg = L1CacheConfig(size_bytes=4 * 64, ways=4)
        sim = L1CacheSim(cfg)
        refs = np.array([1, 2, 3, 4, 1, 2, 3, 4], dtype=np.int64)
        res = sim.access_frame(refs, ones(8), np.zeros(8, dtype=np.int64))
        assert res.misses == 4

    def test_four_way_lru_evicts_oldest(self):
        cfg = L1CacheConfig(size_bytes=4 * 64, ways=4)
        sim = L1CacheSim(cfg)
        refs = np.array([1, 2, 3, 4, 5, 1], dtype=np.int64)
        res = sim.access_frame(refs, ones(6), np.zeros(6, dtype=np.int64))
        # 5 evicts 1, so the final 1 misses again.
        assert res.misses == 6


class TestStackedMatchesReference:
    """The recency-level kernel (ways >= 3) vs the per-access loop.

    Bit-identity must hold per frame, at every frame-boundary snapshot,
    and across checkpoint/restore between the two engines mid-stream.
    """

    def test_engine_selection(self):
        assert L1CacheSim(L1CacheConfig(size_bytes=2048)).engine == "vectorized"
        assert (
            L1CacheSim(L1CacheConfig(size_bytes=4 * 64, ways=4)).engine
            == "stacked"
        )
        assert (
            L1CacheSim(
                L1CacheConfig(size_bytes=4 * 64, ways=4), use_reference=True
            ).engine
            == "reference"
        )
        # Past the kernel's width cap the loop is the engine of record.
        wide = L1CacheConfig(size_bytes=128 * 64, ways=128)
        assert L1CacheSim(wide).engine == "reference"

    @given(
        st.integers(3, 8),  # ways
        st.integers(0, 3),  # log2 sets
        st.lists(st.integers(0, 30), min_size=0, max_size=200),
        st.integers(1, 4),  # frames to split into
    )
    @settings(max_examples=150, deadline=None)
    def test_property_equivalence(self, ways, log_sets, tags, n_frames):
        n_sets = 1 << log_sets
        cfg = L1CacheConfig(size_bytes=n_sets * ways * 64, ways=ways)
        fast = L1CacheSim(cfg)
        ref = L1CacheSim(cfg, use_reference=True)
        assert fast.engine == "stacked" and ref.engine == "reference"
        refs = np.array(tags, dtype=np.int64)
        sets = refs % n_sets
        bounds = np.linspace(0, len(refs), n_frames + 1).astype(int)
        for a, b in zip(bounds, bounds[1:]):
            r_fast = fast.access_frame(refs[a:b], ones(b - a), sets[a:b])
            r_ref = ref.access_frame(refs[a:b], ones(b - a), sets[a:b])
            assert r_fast.misses == r_ref.misses
            assert r_fast.miss_refs.tolist() == r_ref.miss_refs.tolist()
            # Frame-boundary snapshots agree in the shared "general" format.
            assert fast.snapshot_state() == ref.snapshot_state()

    @given(
        st.integers(3, 6),  # ways
        st.lists(st.integers(0, 25), min_size=2, max_size=120),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_checkpoint_mid_stream_across_engines(self, ways, tags, data):
        """Snapshot one engine mid-stream, resume on the other: identical."""
        n_sets = 4
        cfg = L1CacheConfig(size_bytes=n_sets * ways * 64, ways=ways)
        refs = np.array(tags, dtype=np.int64)
        sets = refs % n_sets
        cut = data.draw(st.integers(1, len(tags) - 1))

        ref = L1CacheSim(cfg, use_reference=True)
        ref.access_frame(refs[:cut], ones(cut), sets[:cut])
        expect = ref.access_frame(refs[cut:], ones(len(refs) - cut), sets[cut:])

        resumed = L1CacheSim(cfg)  # stacked engine
        ref_half = L1CacheSim(cfg, use_reference=True)
        ref_half.access_frame(refs[:cut], ones(cut), sets[:cut])
        resumed.restore_state(ref_half.snapshot_state())
        got = resumed.access_frame(refs[cut:], ones(len(refs) - cut), sets[cut:])
        assert got.misses == expect.misses
        assert got.miss_refs.tolist() == expect.miss_refs.tolist()

        # And the reverse direction: stacked snapshot resumes the loop.
        stacked_half = L1CacheSim(cfg)
        stacked_half.access_frame(refs[:cut], ones(cut), sets[:cut])
        loop_resumed = L1CacheSim(cfg, use_reference=True)
        loop_resumed.restore_state(stacked_half.snapshot_state())
        got2 = loop_resumed.access_frame(
            refs[cut:], ones(len(refs) - cut), sets[cut:]
        )
        assert got2.miss_refs.tolist() == expect.miss_refs.tolist()

    def test_reset_invalidates_stack(self):
        cfg = L1CacheConfig(size_bytes=4 * 64, ways=4)
        sim = L1CacheSim(cfg)
        sim.access_frame(np.array([1]), ones(1), np.zeros(1, dtype=np.int64))
        sim.reset()
        res = sim.access_frame(np.array([1]), ones(1), np.zeros(1, dtype=np.int64))
        assert res.misses == 1

    def test_restore_rejects_geometry_mismatch(self):
        small = L1CacheSim(L1CacheConfig(size_bytes=2 * 4 * 64, ways=4))
        big = L1CacheSim(L1CacheConfig(size_bytes=8 * 4 * 64, ways=4))
        with pytest.raises(ValueError):
            big.restore_state(small.snapshot_state())

    def test_restore_rejects_vectorized_snapshot(self):
        two_way = L1CacheSim(L1CacheConfig(size_bytes=2048))
        four_way = L1CacheSim(L1CacheConfig(size_bytes=4 * 64, ways=4))
        with pytest.raises(ValueError):
            four_way.restore_state(two_way.snapshot_state())
