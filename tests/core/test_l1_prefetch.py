"""Tests for the pair-fetch (two-tile line) L1 simulator."""

import numpy as np
import pytest

from repro.core.l1_cache import L1CacheConfig, L1CacheSim
from repro.core.l1_prefetch import L1PairFetchSim
from repro.texture.texture import Texture
from repro.texture.tiling import AddressSpace, pack_tile_refs


@pytest.fixture
def space():
    return AddressSpace([Texture("a", 256, 256)])


def refs_of(*xy):
    xs = np.array([x for x, _ in xy], dtype=np.int64)
    ys = np.array([y for _, y in xy], dtype=np.int64)
    return pack_tile_refs(0, 0, ys, xs)


def ones(n):
    return np.ones(n, dtype=np.int64)


class TestPairFetch:
    def test_buddy_prefetched(self, space):
        sim = L1PairFetchSim(L1CacheConfig(size_bytes=2048), space)
        # Miss on (0,0) prefetches (1,0): the next access hits.
        refs = refs_of((0, 0), (1, 0))
        res = sim.access_frame(refs, ones(2))
        assert res.misses == 1
        assert res.tiles_downloaded == 2

    def test_buddy_is_xor_partner(self, space):
        sim = L1PairFetchSim(L1CacheConfig(size_bytes=2048), space)
        # (1,0)'s buddy is (0,0), not (2,0).
        res = sim.access_frame(refs_of((1, 0), (0, 0), (2, 0)), ones(3))
        assert res.misses == 2  # (1,0) miss; (0,0) hit; (2,0) miss

    def test_vertical_neighbor_not_prefetched(self, space):
        sim = L1PairFetchSim(L1CacheConfig(size_bytes=2048), space)
        res = sim.access_frame(refs_of((0, 0), (0, 1)), ones(2))
        assert res.misses == 2

    def test_downloads_double_misses(self, space):
        sim = L1PairFetchSim(L1CacheConfig(size_bytes=2048), space)
        res = sim.access_frame(refs_of((0, 0), (4, 4), (8, 8)), ones(3))
        assert res.tiles_downloaded == 2 * res.misses
        assert res.download_bytes == res.tiles_downloaded * 64

    def test_never_more_misses_than_baseline_on_scanline_walk(self, space):
        """On a left-to-right tile walk the pair fetch halves the misses."""
        config = L1CacheConfig(size_bytes=2048)
        base = L1CacheSim(config)
        pair = L1PairFetchSim(config, space)
        walk = refs_of(*[(x, 0) for x in range(32)])
        sets = space.l1_set_indices(walk, config.n_sets)
        b = base.access_frame(walk, ones(32), sets)
        p = pair.access_frame(walk, ones(32))
        assert b.misses == 32
        assert p.misses == 16

    def test_state_persists_and_resets(self, space):
        sim = L1PairFetchSim(L1CacheConfig(size_bytes=2048), space)
        sim.access_frame(refs_of((0, 0)), ones(1))
        res = sim.access_frame(refs_of((0, 0)), ones(1))
        assert res.misses == 0
        sim.reset()
        res = sim.access_frame(refs_of((0, 0)), ones(1))
        assert res.misses == 1

    def test_weights_counted_as_reads(self, space):
        sim = L1PairFetchSim(L1CacheConfig(size_bytes=2048), space)
        res = sim.access_frame(refs_of((0, 0)), np.array([7], dtype=np.int64))
        assert res.texel_reads == 7
        assert res.texel_hit_rate == pytest.approx(6 / 7)

    def test_empty_frame(self, space):
        sim = L1PairFetchSim(L1CacheConfig(size_bytes=2048), space)
        res = sim.access_frame(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert res.misses == 0
        assert res.texel_hit_rate == 1.0
