"""Unit tests for the page-table L2 texture cache and its set-associative
counterpart."""

import numpy as np
import pytest

from repro.core.l2_cache import L2CacheConfig, L2TextureCache, SetAssociativeL2Cache
from repro.texture.texture import Texture
from repro.texture.tiling import AddressSpace, pack_tile_refs


@pytest.fixture
def space():
    return AddressSpace([Texture("a", 64, 64), Texture("b", 64, 64)])


def make_cache(space, blocks=4, tile=16, policy="clock"):
    cfg = L2CacheConfig(
        size_bytes=blocks * tile * tile * 4, l2_tile_texels=tile, policy=policy
    )
    return L2TextureCache(cfg, space)


def refs_of(*tuples):
    """Pack (tid, mip, ty, tx) access tuples."""
    tids, mips, tys, txs = zip(*tuples)
    return pack_tile_refs(
        np.array(tids), np.array(mips), np.array(tys), np.array(txs)
    )


class TestConfig:
    def test_block_geometry(self):
        cfg = L2CacheConfig(size_bytes=2 << 20, l2_tile_texels=16)
        assert cfg.block_bytes == 1024
        assert cfg.n_blocks == 2048
        assert cfg.sub_blocks_per_block == 16

    def test_rejects_bad_tile(self):
        with pytest.raises(ValueError):
            L2CacheConfig(l2_tile_texels=12)

    def test_rejects_undersized_cache(self):
        with pytest.raises(ValueError):
            L2CacheConfig(size_bytes=512, l2_tile_texels=16)


class TestSectorMapping:
    def test_full_miss_then_full_hit(self, space):
        cache = make_cache(space)
        refs = refs_of((0, 0, 0, 0), (0, 0, 0, 0))
        res = cache.access_frame(refs)
        assert (res.full_misses, res.partial_hits, res.full_hits) == (1, 0, 1)

    def test_partial_hit_same_block_different_subblock(self, space):
        cache = make_cache(space)
        # Tiles (0,0) and (1,0) share the 16x16 L2 block but differ in L1 sub.
        refs = refs_of((0, 0, 0, 0), (0, 0, 0, 1))
        res = cache.access_frame(refs)
        assert (res.full_misses, res.partial_hits, res.full_hits) == (1, 1, 0)

    def test_sector_bits_persist(self, space):
        cache = make_cache(space)
        cache.access_frame(refs_of((0, 0, 0, 0)))
        res = cache.access_frame(refs_of((0, 0, 0, 0)))
        assert res.full_hits == 1
        assert cache.is_resident(
            int(space.global_l2_ids(refs_of((0, 0, 0, 0)), 16)[0]), 0
        )

    def test_only_requested_subblock_marked(self, space):
        cache = make_cache(space)
        cache.access_frame(refs_of((0, 0, 0, 0)))
        gid = int(space.global_l2_ids(refs_of((0, 0, 0, 0)), 16)[0])
        assert cache.is_resident(gid, 0)
        assert not cache.is_resident(gid, 1)

    def test_32x32_tiles_have_64_sectors(self, space):
        cache = make_cache(space, tile=32)
        # Tiles (0,0) and (7,7) are both inside L2 block 0 of a 32x32 layout.
        refs = refs_of((0, 0, 0, 0), (0, 0, 7, 7))
        res = cache.access_frame(refs)
        assert (res.full_misses, res.partial_hits) == (1, 1)


class TestReplacement:
    def test_eviction_clears_old_mapping(self, space):
        cache = make_cache(space, blocks=2)
        # Fill both blocks, then force an eviction with a third block.
        blocks = [(0, 0, 0, 0), (0, 0, 0, 4), (0, 0, 4, 0)]
        for b in blocks:
            cache.access_frame(refs_of(b))
        assert cache.resident_blocks == 2
        res = cache.access_frame(refs_of(blocks[0]))
        # Block 0 was evicted by the clock (it was the first inactive), so
        # this is a full miss again.
        assert res.full_misses == 1

    def test_eviction_count(self, space):
        cache = make_cache(space, blocks=2)
        refs = refs_of((0, 0, 0, 0), (0, 0, 0, 4), (0, 0, 4, 0), (0, 0, 4, 4))
        res = cache.access_frame(refs)
        assert res.full_misses == 4
        assert res.evictions == 2

    def test_sectors_cleared_on_eviction(self, space):
        cache = make_cache(space, blocks=1)
        cache.access_frame(refs_of((0, 0, 0, 0)))
        cache.access_frame(refs_of((0, 0, 4, 0)))  # evicts the first block
        res = cache.access_frame(refs_of((0, 0, 0, 0)))
        assert res.full_misses == 1  # sector bits did not survive eviction

    def test_capacity_sufficient_no_evictions(self, space):
        cache = make_cache(space, blocks=8)
        refs = refs_of(*[(0, 0, 4 * i, 0) for i in range(4)])
        res = cache.access_frame(refs)
        assert res.evictions == 0
        assert cache.resident_blocks == 4


class TestInterTexture:
    def test_same_coordinates_different_textures_distinct(self, space):
        cache = make_cache(space)
        res = cache.access_frame(refs_of((0, 0, 0, 0), (1, 0, 0, 0)))
        assert res.full_misses == 2

    def test_page_table_sized_for_all_textures(self, space):
        cache = make_cache(space)
        assert cache.page_table_entries == space.total_l2_blocks(16)


class TestDeallocation:
    def test_deallocate_releases_blocks(self, space):
        cache = make_cache(space, blocks=4)
        cache.access_frame(refs_of((0, 0, 0, 0), (1, 0, 0, 0)))
        released = cache.deallocate_texture(0)
        assert released == 1
        assert cache.resident_blocks == 1

    def test_released_blocks_reused_before_eviction(self, space):
        cache = make_cache(space, blocks=2)
        cache.access_frame(refs_of((0, 0, 0, 0), (0, 0, 0, 4)))
        cache.deallocate_texture(0)
        res = cache.access_frame(refs_of((1, 0, 0, 0), (1, 0, 0, 4)))
        assert res.evictions == 0  # freed blocks were reused

    def test_deallocated_texture_misses_afterwards(self, space):
        cache = make_cache(space)
        cache.access_frame(refs_of((0, 0, 0, 0)))
        cache.deallocate_texture(0)
        res = cache.access_frame(refs_of((0, 0, 0, 0)))
        assert res.full_misses == 1


class TestAccounting:
    def test_agp_and_local_bytes(self, space):
        cache = make_cache(space)
        refs = refs_of((0, 0, 0, 0), (0, 0, 0, 1), (0, 0, 0, 0))
        res = cache.access_frame(refs)
        # full miss + partial hit download from host; one full hit local.
        assert res.agp_bytes == 2 * 64
        assert res.local_bytes == 1 * 64

    def test_hit_rates_conditional(self, space):
        cache = make_cache(space)
        refs = refs_of((0, 0, 0, 0), (0, 0, 0, 1), (0, 0, 0, 0), (0, 0, 0, 1))
        res = cache.access_frame(refs)
        full, partial = res.hit_rates()
        assert full == pytest.approx(0.5)
        assert partial == pytest.approx(0.25)

    def test_empty_frame(self, space):
        cache = make_cache(space)
        res = cache.access_frame(np.empty(0, dtype=np.int64))
        assert res.accesses == 0
        assert res.hit_rates() == (0.0, 0.0)


class TestSetAssociative:
    def test_collision_between_mapped_blocks(self, space):
        cfg = L2CacheConfig(size_bytes=4 * 1024, l2_tile_texels=16)  # 4 blocks
        cache = SetAssociativeL2Cache(cfg, space, ways=1)  # 4 sets, direct
        # Two gids congruent mod 4 collide; find such a pair: gids are
        # extent-based, texture b starts at extent of texture a (21 blocks),
        # so (0, block0) and (1, block3) -> gids 0 and 24, both mod 4 == 0.
        r0 = refs_of((0, 0, 0, 0))
        r1 = refs_of((1, 0, 0, 12))  # block index 3 of texture 1 -> gid 24
        gid0 = int(space.global_l2_ids(r0, 16)[0])
        gid1 = int(space.global_l2_ids(r1, 16)[0])
        assert gid0 % 4 == gid1 % 4
        cache.access_frame(r0)
        cache.access_frame(r1)  # evicts gid0 in a direct-mapped set
        res = cache.access_frame(r0)
        assert res.full_misses == 1

    def test_page_table_avoids_that_collision(self, space):
        cache = make_cache(space, blocks=4)
        r0 = refs_of((0, 0, 0, 0))
        r1 = refs_of((1, 0, 0, 12))
        cache.access_frame(r0)
        cache.access_frame(r1)
        res = cache.access_frame(r0)
        assert res.full_hits == 1  # fully associative: no conflict

    def test_ways_must_divide_blocks(self, space):
        cfg = L2CacheConfig(size_bytes=4 * 1024, l2_tile_texels=16)
        with pytest.raises(ValueError):
            SetAssociativeL2Cache(cfg, space, ways=3)

    def test_lru_within_set(self, space):
        cfg = L2CacheConfig(size_bytes=2 * 1024, l2_tile_texels=16)  # 2 blocks
        cache = SetAssociativeL2Cache(cfg, space, ways=2)  # 1 set, 2-way
        a, b, c = (
            refs_of((0, 0, 0, 0)),
            refs_of((0, 0, 0, 4)),
            refs_of((0, 0, 4, 0)),
        )
        cache.access_frame(a)
        cache.access_frame(b)
        cache.access_frame(a)  # promote a
        cache.access_frame(c)  # evicts b
        assert cache.access_frame(a).full_hits == 1
        assert cache.access_frame(b).full_misses == 1
