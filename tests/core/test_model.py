"""Unit tests for the closed-form models (exact paper numbers for Table 4)."""

import pytest

from repro.core.model import (
    average_access_time_l2,
    average_access_time_pull,
    expected_working_set_bytes,
    fractional_advantage,
    l2_structure_sizes,
)

MB = 1024 * 1024
KB = 1024


class TestExpectedWorkingSet:
    def test_paper_village_row(self):
        # Table 1: R=1024x768, d=3.8, util=4.7 -> W = 2.43 MB (paper, 10^6).
        w = expected_working_set_bytes(1024 * 768, 3.8, 4.7)
        assert w / 1e6 == pytest.approx(2.54, abs=0.02)

    def test_paper_city_row(self):
        w = expected_working_set_bytes(1024 * 768, 1.9, 7.8)
        assert w / 1e6 == pytest.approx(0.77, abs=0.02)

    def test_scales_linearly_with_depth(self):
        assert expected_working_set_bytes(100, 4.0, 1.0) == pytest.approx(
            4 * expected_working_set_bytes(100, 1.0, 1.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_working_set_bytes(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            expected_working_set_bytes(100, -1.0, 1.0)
        with pytest.raises(ValueError):
            expected_working_set_bytes(100, 1.0, 0.0)


class TestStructureSizes:
    """Table 4, verified against the paper's exact numbers."""

    @pytest.mark.parametrize(
        "host_mb,expected_kb",
        [(16, 64), (32, 128), (64, 256), (256, 1024), (1024, 4096)],
    )
    def test_page_table_sizes(self, host_mb, expected_kb):
        sizes = l2_structure_sizes(2 * MB, host_mb * MB, l2_tile_texels=16)
        assert sizes.page_table_bytes == expected_kb * KB

    @pytest.mark.parametrize(
        "l2_mb,active_kb,sans_kb", [(2, 0.25, 8), (4, 0.5, 16), (8, 1, 32)]
    )
    def test_brl_sizes(self, l2_mb, active_kb, sans_kb):
        sizes = l2_structure_sizes(l2_mb * MB, 32 * MB, l2_tile_texels=16)
        assert sizes.brl_active_bits_bytes == active_kb * KB
        assert sizes.brl_sans_active_bytes == sans_kb * KB

    def test_paper_example_32mb_gives_32k_entries(self):
        # §5.2 footnote: 32 MB of texture, 16x16x32-bit blocks -> 32 K entries.
        sizes = l2_structure_sizes(2 * MB, 32 * MB, l2_tile_texels=16)
        assert sizes.page_table_entries == 32 * 1024

    def test_8x8_tiles_have_smaller_entries(self):
        s8 = l2_structure_sizes(2 * MB, 32 * MB, l2_tile_texels=8)
        # 4 sector bits round to one 16-bit word, + 16-bit pointer = 4 bytes,
        # but 4x as many entries as 16x16.
        assert s8.page_table_entries == 128 * 1024
        assert s8.page_table_bytes == 128 * 1024 * 4

    def test_32x32_tiles_have_bigger_entries(self):
        s32 = l2_structure_sizes(2 * MB, 32 * MB, l2_tile_texels=32)
        # 64 sector bits = 8 bytes + 2-byte pointer = 10 bytes/entry.
        assert s32.page_table_entries == 8 * 1024
        assert s32.page_table_bytes == 8 * 1024 * 10


class TestFractionalAdvantage:
    def test_no_l2_hits_degenerates_to_c(self):
        assert fractional_advantage(0.0, 0.0, 8.0) == pytest.approx(8.0)

    def test_all_full_hits_gives_half(self):
        # f = c - (c - 1/2) * 1 = 1/2: local L2 access at 2x host speed.
        assert fractional_advantage(1.0, 0.0, 8.0) == pytest.approx(0.5)

    def test_all_partial_hits_gives_one(self):
        # Partial hits cost the same as a pull-architecture download.
        assert fractional_advantage(0.0, 1.0, 8.0) == pytest.approx(1.0)

    def test_high_full_hit_rate_beats_pull(self):
        assert fractional_advantage(0.95, 0.04, 8.0) < 1.0

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            fractional_advantage(1.2, 0.0)
        with pytest.raises(ValueError):
            fractional_advantage(0.7, 0.6)


class TestAccessTimes:
    def test_pull_formula(self):
        # A_pull = t1 + (1 - h1) t3
        assert average_access_time_pull(0.95, 1.0, 10.0) == pytest.approx(1.5)

    def test_l2_beats_pull_when_f_below_one(self):
        h1, t1, t3 = 0.95, 1.0, 10.0
        f = fractional_advantage(0.9, 0.08, 8.0)
        assert average_access_time_l2(h1, f, t1, t3) < average_access_time_pull(
            h1, t1, t3
        )
