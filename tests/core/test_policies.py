"""Unit tests for L2 replacement policies."""

import pytest

from repro.core.policies import (
    BeladyPolicy,
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("clock", ClockPolicy),
        ("lru", LRUPolicy),
        ("fifo", FIFOPolicy),
        ("random", RandomPolicy),
        ("belady", BeladyPolicy),
    ])
    def test_builds_by_name(self, name, cls):
        assert isinstance(make_policy(name, 8), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_policy("mru", 8)

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            ClockPolicy(0)


class TestClock:
    def test_victim_skips_active(self):
        p = ClockPolicy(4)
        p.touch(0)
        assert p.victim() == 1

    def test_hand_clears_active_as_it_passes(self):
        p = ClockPolicy(4)
        for b in range(4):
            p.touch(b)
        # All active: the hand sweeps clearing, then takes block 0 on the
        # second pass (second-chance semantics).
        assert p.victim() == 0
        # Bits were cleared during the sweep, so the next victim is 1.
        assert p.victim() == 1

    def test_search_lengths_recorded(self):
        p = ClockPolicy(4)
        p.touch(0)
        p.touch(1)
        p.victim()
        assert p.search_lengths == [3]  # examined 0, 1, then found 2

    def test_reset(self):
        p = ClockPolicy(4)
        p.touch(0)
        p.victim()
        p.reset()
        assert p.search_lengths == []
        assert p.victim() == 0

    def test_round_robin_when_idle(self):
        p = ClockPolicy(3)
        assert [p.victim() for _ in range(4)] == [0, 1, 2, 0]


class TestLRU:
    def test_evicts_least_recent(self):
        p = LRUPolicy(3)
        p.touch(0)
        p.touch(1)
        p.touch(2)
        p.touch(0)  # 1 is now the LRU
        assert p.victim() == 1

    def test_untouched_blocks_chosen_first(self):
        p = LRUPolicy(3)
        p.touch(1)
        p.touch(2)
        assert p.victim() == 0

    def test_reset(self):
        p = LRUPolicy(2)
        p.touch(1)
        p.reset()
        assert p.victim() == 0


class TestFIFO:
    def test_cycles_in_order_regardless_of_touches(self):
        p = FIFOPolicy(3)
        p.touch(0)
        p.touch(0)
        assert [p.victim() for _ in range(4)] == [0, 1, 2, 0]


class TestRandom:
    def test_in_range_and_deterministic(self):
        a = RandomPolicy(16, seed=3)
        b = RandomPolicy(16, seed=3)
        va = [a.victim() for _ in range(20)]
        vb = [b.victim() for _ in range(20)]
        assert va == vb
        assert all(0 <= v < 16 for v in va)

    def test_reset_replays_sequence(self):
        p = RandomPolicy(16, seed=3)
        first = [p.victim() for _ in range(5)]
        p.reset()
        assert [p.victim() for _ in range(5)] == first


class TestBelady:
    def test_touch_is_a_noop(self):
        BeladyPolicy(4).touch(0)

    def test_victim_raises_with_offline_pointer(self):
        with pytest.raises(RuntimeError, match="offline-only"):
            BeladyPolicy(4).victim()
