"""Tests for the budgeted push-architecture texture manager."""

import numpy as np
import pytest

from repro.core.push_manager import BudgetedPushArchitecture
from repro.texture.texture import Texture
from repro.texture.tiling import pack_tile_refs
from repro.trace.trace import FrameTrace, Trace, TraceMeta


def make_trace(frame_tids):
    textures = [
        Texture("a", 64, 64, original_depth_bits=16),   # host_bytes Ha
        Texture("b", 64, 64, original_depth_bits=16),
        Texture("c", 64, 64, original_depth_bits=16),
    ]
    frames = []
    for tids in frame_tids:
        refs = pack_tile_refs(
            np.array(tids, dtype=np.int64), 0,
            np.zeros(len(tids), dtype=np.int64),
            np.zeros(len(tids), dtype=np.int64),
        )
        frames.append(FrameTrace(refs, np.ones(len(tids), dtype=np.int64),
                                 len(tids)))
    meta = TraceMeta("t", 8, 8, "point", len(frames))
    return Trace(meta=meta, frames=frames, textures=textures)


TEX_BYTES = Texture("x", 64, 64, original_depth_bits=16).host_bytes


class TestValidation:
    def test_positive_budget(self):
        with pytest.raises(ValueError):
            BudgetedPushArchitecture(0)


class TestDownloads:
    def test_cold_start_downloads_everything(self):
        trace = make_trace([[0, 1]])
        res = BudgetedPushArchitecture(10 * TEX_BYTES).run(trace)
        assert res.download_bytes.tolist() == [2 * TEX_BYTES]

    def test_resident_textures_not_redownloaded(self):
        trace = make_trace([[0, 1], [0, 1]])
        res = BudgetedPushArchitecture(10 * TEX_BYTES).run(trace)
        assert res.download_bytes.tolist() == [2 * TEX_BYTES, 0]

    def test_generous_budget_keeps_all(self):
        trace = make_trace([[0], [1], [2], [0], [1], [2]])
        res = BudgetedPushArchitecture(10 * TEX_BYTES).run(trace)
        assert res.total_download_bytes == 3 * TEX_BYTES  # each once

    def test_tight_budget_thrashes(self):
        # Budget for one texture; alternating needs re-download every frame.
        trace = make_trace([[0], [1], [0], [1]])
        res = BudgetedPushArchitecture(TEX_BYTES).run(trace)
        assert res.download_bytes.tolist() == [TEX_BYTES] * 4

    def test_lru_eviction_order(self):
        # Budget for two textures; access 0, 1, then 2 evicts 0 (LRU).
        trace = make_trace([[0], [1], [2], [1], [0]])
        res = BudgetedPushArchitecture(2 * TEX_BYTES).run(trace)
        # Frame 3 (tid 1) is still resident; frame 4 (tid 0) was evicted.
        assert res.download_bytes.tolist() == [
            TEX_BYTES, TEX_BYTES, TEX_BYTES, 0, TEX_BYTES,
        ]


class TestAccounting:
    def test_resident_curve_within_budget_when_fitting(self):
        trace = make_trace([[0], [1], [2]])
        res = BudgetedPushArchitecture(2 * TEX_BYTES).run(trace)
        assert np.all(res.resident_bytes <= 2 * TEX_BYTES)

    def test_overflow_frames_counted(self):
        # Three textures needed at once, budget for one.
        trace = make_trace([[0, 1, 2]])
        res = BudgetedPushArchitecture(TEX_BYTES).run(trace)
        assert res.overflow_frames == 1
        # The frame's own textures are kept even over budget.
        assert res.resident_bytes[0] == 3 * TEX_BYTES

    def test_mean_download(self):
        trace = make_trace([[0], [1]])
        res = BudgetedPushArchitecture(10 * TEX_BYTES).run(trace)
        assert res.mean_download_bytes == pytest.approx(TEX_BYTES)
