"""Tests for the texture streaming driver (§5.2 deallocation under load)."""

import numpy as np
import pytest

from repro.core.hierarchy import HierarchyConfig, MultiLevelTextureCache
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig
from repro.core.streaming import StreamingDriver
from repro.texture.texture import Texture
from repro.texture.tiling import AddressSpace, pack_tile_refs
from repro.trace.trace import FrameTrace, Trace, TraceMeta


def make_sim(space, l2_blocks=16):
    return MultiLevelTextureCache(
        HierarchyConfig(
            l1=L1CacheConfig(size_bytes=2048),
            l2=L2CacheConfig(size_bytes=l2_blocks * 1024, l2_tile_texels=16),
        ),
        space,
    )


def trace_of(space, frame_tids):
    frames = []
    for tids in frame_tids:
        refs = pack_tile_refs(
            np.array(tids, dtype=np.int64), 0,
            np.zeros(len(tids), dtype=np.int64),
            np.zeros(len(tids), dtype=np.int64),
        )
        frames.append(FrameTrace(refs, np.ones(len(tids), dtype=np.int64),
                                 len(tids)))
    return Trace(TraceMeta("s", 8, 8, "point", len(frames)), frames,
                 space.textures)


@pytest.fixture
def space():
    return AddressSpace([Texture("a", 64, 64), Texture("b", 64, 64)])


class TestValidation:
    def test_requires_l2(self, space):
        pull = MultiLevelTextureCache(
            HierarchyConfig(l1=L1CacheConfig(size_bytes=2048)), space
        )
        with pytest.raises(ValueError):
            StreamingDriver(pull, idle_frames=2)

    def test_requires_positive_idle(self, space):
        with pytest.raises(ValueError):
            StreamingDriver(make_sim(space), idle_frames=0)


class TestStreaming:
    def test_idle_texture_deleted(self, space):
        # Texture 1 used in frame 0 only; with idle_frames=2 it is deleted
        # after frame 2.
        trace = trace_of(space, [[0, 1], [0], [0], [0]])
        res = StreamingDriver(make_sim(space), idle_frames=2).run_trace(trace)
        deleted = [f.deleted_tids for f in res.frames]
        assert deleted[2] == [1]
        assert res.total_blocks_released >= 1

    def test_active_texture_never_deleted(self, space):
        trace = trace_of(space, [[0], [0], [0], [0], [0]])
        res = StreamingDriver(make_sim(space), idle_frames=2).run_trace(trace)
        assert res.total_deletes == 0

    def test_reload_counts_and_pays_misses(self, space):
        # Texture 1: used, idle long enough to be deleted, then used again.
        # The return visit touches a *different* L1 tile of the same L2
        # block, so it must go through the L2 (the original tile could
        # still sit in L1 — inclusion is not guaranteed) and finds the
        # block deallocated: a full miss where an undeleted texture would
        # have scored a partial hit.
        frames = [[0, 1], [0], [0], [0]]
        trace = trace_of(space, frames)
        last_refs = pack_tile_refs(
            np.array([0, 1], dtype=np.int64), 0,
            np.zeros(2, dtype=np.int64), np.array([0, 1], dtype=np.int64),
        )
        trace.frames.append(
            FrameTrace(last_refs, np.ones(2, dtype=np.int64), 2)
        )
        trace.meta = TraceMeta("s", 8, 8, "point", len(trace.frames))

        res = StreamingDriver(make_sim(space), idle_frames=2).run_trace(trace)
        assert res.total_deletes == 1
        assert res.total_reloads == 1
        last = res.frames[-1]
        assert last.cache.l2.full_misses >= 1

        # Without streaming the same access is only a partial hit.
        base = make_sim(space).run_trace(trace)
        assert base.frames[-1].l2.full_misses == 0

    def test_no_streaming_when_threshold_huge(self, space):
        trace = trace_of(space, [[0, 1], [0], [0], [0]])
        res = StreamingDriver(make_sim(space), idle_frames=100).run_trace(trace)
        assert res.total_deletes == 0

    def test_streaming_differential_batched_vs_reference(self, space):
        # Deletion/reload churn drives the vectorized deallocate_texture
        # and the batched kernels through eviction-heavy, non-contiguous
        # residency states; every frame must match the reference loops.
        rng = np.random.default_rng(5)
        patterns = [[0, 1], [0], [0], [0, 1], [1], [1], [1], [0], [0, 1], [1]]
        frames = []
        for tids in patterns:
            refs_parts = []
            for tid in tids:
                n = int(rng.integers(4, 30))
                refs_parts.append(
                    pack_tile_refs(
                        np.full(n, tid, dtype=np.int64),
                        0,
                        rng.integers(0, 16, n),
                        rng.integers(0, 16, n),
                    )
                )
            refs = np.concatenate(refs_parts)
            frames.append(FrameTrace(refs, np.ones(len(refs), dtype=np.int64), len(refs)))
        trace = Trace(TraceMeta("s", 8, 8, "point", len(frames)), frames, space.textures)

        config = HierarchyConfig(
            l1=L1CacheConfig(size_bytes=2048),
            l2=L2CacheConfig(size_bytes=4 * 1024, l2_tile_texels=16),
            tlb_entries=4,
        )
        ref_sim = MultiLevelTextureCache(config, space, use_reference=True)
        bat_sim = MultiLevelTextureCache(config, space)
        ref = StreamingDriver(ref_sim, idle_frames=2).run_trace(trace)
        bat = StreamingDriver(bat_sim, idle_frames=2).run_trace(trace)
        for rf, bf in zip(ref.frames, bat.frames):
            assert rf.cache == bf.cache
            assert rf.deleted_tids == bf.deleted_tids
            assert rf.blocks_released == bf.blocks_released
            assert rf.reloaded_tids == bf.reloaded_tids
        np.testing.assert_array_equal(ref_sim.l2._t_block, bat_sim.l2._t_block)
        np.testing.assert_array_equal(ref_sim.l2._t_sectors, bat_sim.l2._t_sectors)
        assert ref_sim.l2._free == bat_sim.l2._free
        assert ref.total_deletes > 0 and ref.total_reloads > 0

    def test_streaming_bandwidth_at_least_baseline(self, space):
        """Deleting and reloading can only add AGP traffic."""
        trace = trace_of(space, [[0, 1], [0], [0], [0, 1], [0, 1]])
        base = make_sim(space).run_trace(trace)
        res = StreamingDriver(make_sim(space), idle_frames=2).run_trace(trace)
        assert res.mean_agp_bytes_per_frame >= np.mean(
            [f.agp_bytes for f in base.frames]
        ) - 1e-9
