"""Tests for the transaction-latency timing model."""

import numpy as np
import pytest

from repro.core.hierarchy import FrameCacheStats, TraceRunResult, HierarchyConfig
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig, L2FrameResult
from repro.core.tlb import TLBFrameResult
from repro.core.timing import (
    FrameTiming,
    TimingModel,
    bus_bound_fraction,
    estimate_frame_timings,
    mean_fps,
    sanity_check_against_fractional_advantage,
)


def pull_result(frames):
    return TraceRunResult(
        config=HierarchyConfig(l1=L1CacheConfig(size_bytes=2048)), frames=frames
    )


def l2_result(frames):
    return TraceRunResult(
        config=HierarchyConfig(
            l1=L1CacheConfig(size_bytes=2048),
            l2=L2CacheConfig(size_bytes=64 * 1024),
        ),
        frames=frames,
    )


class TestModelValidation:
    def test_derived_latencies(self):
        m = TimingModel(host_download_cycles=20.0, full_miss_cost_ratio=8.0)
        assert m.l2_full_hit_cycles == 10.0
        assert m.l2_partial_hit_cycles == 20.0
        assert m.l2_full_miss_cycles == 160.0

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            TimingModel(clock_hz=0)
        with pytest.raises(ValueError):
            TimingModel(agp_bytes_per_second=-1)

    def test_rejects_cheap_downloads(self):
        with pytest.raises(ValueError):
            TimingModel(l1_hit_cycles=5.0, host_download_cycles=2.0)


class TestFrameTiming:
    def test_pull_frame_cycles(self):
        m = TimingModel(clock_hz=100.0, agp_bytes_per_second=1e12)
        stats = FrameCacheStats(texel_reads=100, l1_accesses=50, l1_misses=10)
        (t,) = estimate_frame_timings(pull_result([stats]), m)
        # 100 hits * 1 + 10 misses * 20 = 300 cycles at 100 Hz = 3 s.
        assert t.compute_cycles == 300.0
        assert t.compute_seconds == pytest.approx(3.0)
        assert not t.bus_bound

    def test_l2_frame_cycles(self):
        m = TimingModel(clock_hz=100.0, agp_bytes_per_second=1e12)
        stats = FrameCacheStats(
            texel_reads=100,
            l1_accesses=50,
            l1_misses=10,
            l2=L2FrameResult(
                accesses=10, full_hits=6, partial_hits=3, full_misses=1,
                evictions=0,
            ),
        )
        (t,) = estimate_frame_timings(l2_result([stats]), m)
        # 100*1 + 6*10 + 3*20 + 1*160 = 380 cycles.
        assert t.compute_cycles == 380.0

    def test_tlb_penalty_added(self):
        m = TimingModel(clock_hz=100.0, agp_bytes_per_second=1e12)
        stats = FrameCacheStats(
            texel_reads=10,
            l1_accesses=5,
            l1_misses=2,
            l2=L2FrameResult(accesses=2, full_hits=2, partial_hits=0,
                             full_misses=0, evictions=0),
            tlb=TLBFrameResult(accesses=2, hits=1),
        )
        (t,) = estimate_frame_timings(l2_result([stats]), m)
        assert t.compute_cycles == 10 + 2 * 10 + 1 * 10

    def test_bus_bound_frame(self):
        # Slow bus: 64 bytes take 64 s; compute takes far less.
        m = TimingModel(clock_hz=1e9, agp_bytes_per_second=1.0)
        stats = FrameCacheStats(texel_reads=10, l1_accesses=5, l1_misses=1)
        (t,) = estimate_frame_timings(pull_result([stats]), m)
        assert t.bus_bound
        assert t.seconds == pytest.approx(64.0)


class TestAggregates:
    def _timings(self):
        return [
            FrameTiming(100, 0, compute_seconds=0.1, bus_seconds=0.05),
            FrameTiming(100, 0, compute_seconds=0.1, bus_seconds=0.3),
        ]

    def test_mean_fps(self):
        # Frame times 0.1 and 0.3 -> 2 frames / 0.4 s = 5 fps.
        assert mean_fps(self._timings()) == pytest.approx(5.0)

    def test_bus_bound_fraction(self):
        assert bus_bound_fraction(self._timings()) == pytest.approx(0.5)

    def test_empty(self):
        assert mean_fps([]) == 0.0
        assert bus_bound_fraction([]) == 0.0


class TestConsistencyWithClosedForm:
    def test_agreement_on_uniform_frames(self):
        """When every frame has the same mix, the transaction timing and
        the SS5.4.2 closed form coincide exactly (texel-read weighting)."""
        pull_stats = FrameCacheStats(texel_reads=1000, l1_accesses=500,
                                     l1_misses=50)
        l2_stats = FrameCacheStats(
            texel_reads=1000,
            l1_accesses=500,
            l1_misses=50,
            l2=L2FrameResult(accesses=50, full_hits=40, partial_hits=8,
                             full_misses=2, evictions=0),
        )
        timing, closed = sanity_check_against_fractional_advantage(
            pull_result([pull_stats] * 3), l2_result([l2_stats] * 3)
        )
        assert timing == pytest.approx(closed, rel=1e-9)
