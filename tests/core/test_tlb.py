"""Unit tests for the texture page table TLB."""

import numpy as np
import pytest

from repro.core.tlb import TextureTableTLB


def arr(*xs):
    return np.array(xs, dtype=np.int64)


class TestValidation:
    def test_needs_entries(self):
        with pytest.raises(ValueError):
            TextureTableTLB(0)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            TextureTableTLB(4, policy="clock")


class TestSingleEntry:
    def test_repeats_hit(self):
        tlb = TextureTableTLB(1)
        res = tlb.access_frame(arr(5, 5, 5, 6, 6))
        assert res.hits == 3
        assert res.misses == 2

    def test_alternation_always_misses(self):
        tlb = TextureTableTLB(1)
        res = tlb.access_frame(arr(1, 2, 1, 2))
        assert res.hits == 0


class TestRoundRobin:
    def test_fills_then_replaces_in_order(self):
        tlb = TextureTableTLB(2)
        tlb.access_frame(arr(1, 2))        # fill
        tlb.access_frame(arr(3))           # replaces slot 0 (holding 1)
        res = tlb.access_frame(arr(2, 3, 1))
        assert res.hits == 2               # 2 and 3 resident; 1 was replaced

    def test_hand_does_not_advance_on_hit(self):
        tlb = TextureTableTLB(2)
        tlb.access_frame(arr(1, 2, 1, 1, 1))  # hits don't move the hand
        tlb.access_frame(arr(3))              # still replaces slot 0
        res = tlb.access_frame(arr(2))
        assert res.hits == 1

    def test_state_persists_across_frames(self):
        tlb = TextureTableTLB(4)
        tlb.access_frame(arr(1, 2, 3))
        res = tlb.access_frame(arr(1, 2, 3))
        assert res.hits == 3

    def test_reset(self):
        tlb = TextureTableTLB(4)
        tlb.access_frame(arr(1))
        tlb.reset()
        assert tlb.access_frame(arr(1)).hits == 0


class TestLRUPolicy:
    def test_lru_keeps_recent(self):
        tlb = TextureTableTLB(2, policy="lru")
        tlb.access_frame(arr(1, 2, 1))  # LRU order: 2 oldest
        tlb.access_frame(arr(3))        # evicts 2
        res = tlb.access_frame(arr(1, 2))
        assert res.hits == 1

    def test_lru_beats_round_robin_on_looping_pattern(self):
        # A pattern with strong recency: LRU should never do worse.
        stream = arr(*([1, 2, 3, 1, 2, 3] * 10))
        rr = TextureTableTLB(3).access_frame(stream)
        lru = TextureTableTLB(3, policy="lru").access_frame(stream)
        assert lru.hits >= rr.hits


class TestResult:
    def test_hit_rate(self):
        tlb = TextureTableTLB(1)
        res = tlb.access_frame(arr(1, 1))
        assert res.hit_rate == pytest.approx(0.5)

    def test_empty_frame(self):
        tlb = TextureTableTLB(1)
        res = tlb.access_frame(np.empty(0, dtype=np.int64))
        assert res.hit_rate == 0.0
