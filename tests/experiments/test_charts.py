"""Tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.experiments.charts import SERIES_GLYPHS, ascii_chart


class TestAsciiChart:
    def test_single_series_renders(self):
        out = ascii_chart({"a": np.linspace(0, 10, 20)}, width=20, height=6)
        lines = out.splitlines()
        assert any("*" in line for line in lines)
        assert "* = a" in out

    def test_monotone_series_rises_left_to_right(self):
        out = ascii_chart({"a": np.linspace(0, 10, 40)}, width=40, height=8)
        rows = [line.split("|", 1)[1] for line in out.splitlines() if "|" in line]
        # The first (top) row's marks must be to the right of the last
        # mark-bearing row's marks.
        top_cols = [i for i, c in enumerate(rows[0]) if c == "*"]
        bottom_cols = [i for i, c in enumerate(rows[-1]) if c == "*"]
        assert min(top_cols) > max(bottom_cols)

    def test_multiple_series_distinct_glyphs(self):
        out = ascii_chart(
            {"a": [1, 2, 3], "b": [3, 2, 1], "c": [2, 2, 2]}, width=12, height=6
        )
        for glyph, name in zip(SERIES_GLYPHS, "abc"):
            assert f"{glyph} = {name}" in out

    def test_too_many_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({str(i): [1] for i in range(9)})

    def test_empty_series_dict(self):
        assert "no series" in ascii_chart({})

    def test_all_nan(self):
        assert "no finite data" in ascii_chart({"a": [np.nan, np.nan]})

    def test_constant_series_no_crash(self):
        out = ascii_chart({"a": [5.0, 5.0, 5.0]}, width=10, height=4)
        assert "*" in out

    def test_log_scale_handles_zeros(self):
        out = ascii_chart({"a": [0.0, 1.0, 1000.0]}, logy=True, width=12, height=6)
        assert "[log y]" in out

    def test_axis_labels_present(self):
        out = ascii_chart({"a": [0.0, 10.0]}, width=10, height=5)
        assert "10" in out
        assert "frame 0 .. 1" in out

    def test_resampling_long_series(self):
        out = ascii_chart({"a": np.sin(np.linspace(0, 6, 500))}, width=30, height=6)
        rows = [line.split("|", 1)[1] for line in out.splitlines() if "|" in line]
        assert all(len(r) == 30 for r in rows)
