"""Tests for the experiments CLI entry point."""

import pytest

from repro.experiments.__main__ import main


class TestMain:
    def test_analytic_experiments(self, capsys):
        assert main(["fig3", "table4"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table4" in out
        assert "t_table" in out

    def test_scale_flag(self, capsys):
        # Analytic experiments ignore scale but the flag must parse.
        assert main(["table4", "--scale", "small"]) == 0

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["fig99"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--scale", "enormous"])
