"""Tests for experiment scale presets and size scaling."""

import pytest

from repro.experiments.config import (
    L1_SIZE_SWEEP,
    PAPER_PIXELS,
    Scale,
    scaled_l2_sizes,
)


class TestScale:
    def test_presets_ordered_by_cost(self):
        assert Scale.small().pixels < Scale.bench().pixels
        assert Scale.bench().pixels < Scale.full().pixels
        assert Scale.full().pixels < Scale.paper().pixels

    def test_paper_preset_matches_paper(self):
        p = Scale.paper()
        assert (p.width, p.height) == (1024, 768)
        assert p.frames == 411
        assert p.pixel_ratio == 1.0

    def test_pixel_ratio(self):
        s = Scale(width=512, height=384, frames=10, detail=1.0, name="x")
        assert s.pixel_ratio == pytest.approx(0.25)

    def test_from_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert Scale.from_env().name == "bench"
        assert Scale.from_env(Scale.small()).name == "small"

    def test_from_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert Scale.from_env().name == "full"
        # Env beats the in-code default.
        assert Scale.from_env(Scale.small()).name == "full"

    def test_from_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "gigantic")
        with pytest.raises(ValueError):
            Scale.from_env()


class TestScaledL2Sizes:
    def test_paper_scale_exact(self):
        sizes = dict(scaled_l2_sizes(Scale.paper()))
        assert sizes["2 MB"] == 2 << 20
        assert sizes["4 MB"] == 4 << 20
        assert sizes["8 MB"] == 8 << 20

    def test_scaled_down_proportionally(self):
        s = Scale(width=512, height=384, frames=10, detail=1.0, name="x")
        sizes = dict(scaled_l2_sizes(s))
        assert sizes["2 MB"] == (2 << 20) // 4
        assert sizes["8 MB"] == (8 << 20) // 4

    def test_minimum_clamp(self):
        tiny = Scale(width=16, height=16, frames=1, detail=0.1, name="t")
        for _, actual in scaled_l2_sizes(tiny):
            assert actual >= 64 * 1024

    def test_monotone(self):
        sizes = [b for _, b in scaled_l2_sizes(Scale.bench())]
        assert sizes == sorted(sizes)


class TestSweeps:
    def test_l1_sweep_is_paper_range(self):
        assert [s // 1024 for s in L1_SIZE_SWEEP] == [2, 4, 8, 16, 32]

    def test_paper_pixels(self):
        assert PAPER_PIXELS == 786432
