"""Typed validation of runtime-tuning environment variables.

A typo in ``REPRO_JOBS``, ``REPRO_TASK_TIMEOUT``, or ``REPRO_CHAOS`` must
fail the run up front with a :class:`~repro.errors.ConfigError` naming the
variable and the problem — not fall back silently or surface as a raw
ValueError deep inside the worker pool.
"""

import pytest

from repro.errors import ConfigError, ReproError
from repro.experiments.parallel import default_jobs, default_task_timeout
from repro.reliability.chaos import ChaosPolicy


class TestReproJobs:
    def test_unset_and_valid(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert default_jobs() == 8

    @pytest.mark.parametrize("raw", ["banana", "0", "-2", "2.5", ""])
    def test_invalid_values_raise(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        if raw == "":
            assert default_jobs() == 1  # empty means unset, not invalid
            return
        with pytest.raises(ConfigError) as exc:
            default_jobs()
        assert exc.value.variable == "REPRO_JOBS"
        assert exc.value.value == raw


class TestReproTaskTimeout:
    def test_unset_and_valid(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert default_task_timeout() == 300.0
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "12.5")
        assert default_task_timeout() == 12.5

    @pytest.mark.parametrize("raw", ["soon", "-5", "0", "inf", "nan"])
    def test_invalid_values_raise(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", raw)
        with pytest.raises(ConfigError) as exc:
            default_task_timeout()
        assert exc.value.variable == "REPRO_TASK_TIMEOUT"


class TestReproChaos:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert ChaosPolicy.from_env() is None

    def test_valid_policy_round_trips(self, monkeypatch):
        policy = ChaosPolicy(seed=7, kill_rate=1.0, max_attempt=1, bitflip_rate=0.02)
        monkeypatch.setenv("REPRO_CHAOS", policy.to_env())
        assert ChaosPolicy.from_env() == policy

    @pytest.mark.parametrize(
        "raw",
        [
            "{not json",  # undecodable
            "[1, 2]",  # not an object
            '{"kill_rte": 0.5}',  # unknown field (typo)
            '{"kill_rate": 1.5}',  # out-of-range probability
            '{"seed": "abc"}',  # ChaosPolicy rejects at construction
        ],
    )
    def test_invalid_values_raise(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CHAOS", raw)
        with pytest.raises(ConfigError) as exc:
            ChaosPolicy.from_env()
        assert exc.value.variable == "REPRO_CHAOS"

    def test_config_error_is_a_value_error(self, monkeypatch):
        # Callers that predate the taxonomy catch ValueError; keep that true.
        monkeypatch.setenv("REPRO_CHAOS", "{broken")
        with pytest.raises(ValueError):
            ChaosPolicy.from_env()
        assert issubclass(ConfigError, ReproError)
