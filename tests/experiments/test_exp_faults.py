"""The abl-faults ablation: baseline equivalence and monotonic overhead."""

from repro.experiments.config import Scale
from repro.experiments.exp_ablations import run_faults
from repro.experiments.simcache import run_hierarchy
from repro.experiments.traces import get_trace
from repro.experiments.config import L1_LOW_BYTES
from repro.texture.sampler import FilterMode

MICRO = Scale(width=96, height=72, frames=3, detail=0.25, name="micro")


class TestAblFaults:
    def test_zero_rate_reproduces_baseline_exactly(self):
        result = run_faults(MICRO)
        trace = get_trace("village", MICRO, FilterMode.BILINEAR)
        baseline = run_hierarchy(trace, l1_bytes=L1_LOW_BYTES)
        pull0 = result.data[("pull", 0.0)]
        assert pull0["agp_mb_per_frame"] == (
            baseline.mean_agp_bytes_per_frame / (1 << 20)
        )
        assert pull0["retry_mb_per_frame"] == 0.0
        assert pull0["retried_transfers"] == 0
        assert pull0["stale_blocks"] == 0

    def test_overhead_grows_with_fault_rate(self):
        result = run_faults(MICRO)
        pull = [result.data[("pull", r)]["retry_mb_per_frame"]
                for r in (0.0, 0.001, 0.01, 0.05)]
        assert pull[0] == 0.0
        assert pull[-1] > pull[0]
        assert sorted(pull) == pull

    def test_l2_retries_cost_less_than_pull(self):
        # The L2 issues far fewer host transfers, so the same link fault
        # rate produces less retry traffic.
        result = run_faults(MICRO)
        assert (
            result.data[("L2", 0.05)]["retry_mb_per_frame"]
            <= result.data[("pull", 0.05)]["retry_mb_per_frame"]
        )

    def test_baseline_column_unperturbed_by_faults(self):
        result = run_faults(MICRO)
        for arch in ("pull", "L2"):
            base = {result.data[(arch, r)]["agp_mb_per_frame"]
                    for r in (0.0, 0.001, 0.01, 0.05)}
            assert len(base) == 1  # fault injection never changes it
