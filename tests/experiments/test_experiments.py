"""End-to-end tests: every registered experiment runs and reproduces the
paper's qualitative shape at micro scale."""

import numpy as np
import pytest

from repro.experiments.config import Scale
from repro.experiments.runner import EXPERIMENTS, run_experiment

MICRO = Scale(width=96, height=72, frames=3, detail=0.25, name="micro")

ALL_IDS = sorted(EXPERIMENTS)


@pytest.fixture(autouse=True)
def snapshots_in_tmp(tmp_path, monkeypatch):
    # fig12 writes PPM images; keep them out of the repository.
    monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(tmp_path / "snaps"))


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        for exp_id in ("fig3", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11",
                       "table1", "table2", "table3", "table4", "table5_6",
                       "table7", "table8"):
            assert exp_id in EXPERIMENTS

    def test_ablations_registered(self):
        for exp_id in ("abl-zfirst", "abl-replacement", "abl-raster-order",
                       "abl-l2-assoc", "abl-future"):
            assert exp_id in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99", MICRO)


@pytest.mark.parametrize("exp_id", ALL_IDS)
def test_every_experiment_runs(exp_id):
    result = run_experiment(exp_id, MICRO)
    assert result.experiment_id == exp_id
    assert result.text.strip()
    assert result.render().startswith(f"=== {exp_id}")


class TestShapes:
    """Qualitative paper findings that must hold even at micro scale."""

    def test_fig3_headline_checks(self):
        result = run_experiment("fig3", MICRO)
        assert all(result.data["checks"].values())

    def test_table1_city_leaner_than_village(self):
        result = run_experiment("table1", MICRO)
        v = result.data["village"]
        c = result.data["city"]
        assert v.depth_complexity > c.depth_complexity
        assert v.expected_working_set_bytes > c.expected_working_set_bytes

    def test_fig4_l2_needs_less_memory_than_push(self):
        result = run_experiment("fig4", MICRO)
        for workload in ("village", "city"):
            curves = result.data[workload]
            # Compare totals over the animation (per-frame noise aside).
            assert curves["l2_16"].sum() < curves["push"].sum()
            # Smaller L2 tiles need less memory than bigger ones.
            assert curves["l2_8"].sum() <= curves["l2_16"].sum()
            assert curves["l2_16"].sum() <= curves["l2_32"].sum()

    def test_fig5_new_below_total(self):
        result = run_experiment("fig5", MICRO)
        for workload in ("village", "city"):
            d = result.data[workload]
            assert np.all(d["new"] <= d["total"])

    def test_fig6_new_below_total(self):
        result = run_experiment("fig6", MICRO)
        for workload in ("village", "city"):
            for tile in (4, 8):
                d = result.data[workload][tile]
                assert np.all(d["new"] <= d["total"])

    def test_fig9_miss_rate_monotone_in_size(self):
        result = run_experiment("fig9", MICRO)
        for mode in ("bilinear", "trilinear"):
            means = [result.data[mode][s]["mean"] for s in sorted(result.data[mode])]
            assert means == sorted(means, reverse=True)

    def test_table2_hit_rates_high_and_monotone(self):
        result = run_experiment("table2", MICRO)
        rates = [result.data[s]["bilinear"] for s in sorted(result.data)]
        assert rates == sorted(rates)
        assert rates[0] > 0.9

    def test_table3_l2_saves_bandwidth(self):
        result = run_experiment("table3", MICRO)
        for workload in ("village", "city"):
            key = (workload, "trilinear")
            no_l2 = result.data["2 KB L1, no L2"][key]
            with_l2 = result.data["2 KB L1, 8 MB L2"][key]
            assert with_l2 < no_l2

    def test_table7_f_shrinks_with_l2_size(self):
        # At micro scale (3 frames) compulsory misses dominate, so f < 1 is
        # not yet reachable (the bench asserts it at real scale); but f must
        # never exceed the full-miss cost and must improve with L2 size.
        result = run_experiment("table7", MICRO)
        assert all(f < 8.0 for f in result.data.values())
        for workload in ("village", "city"):
            for mode in ("bilinear", "trilinear"):
                fs = [result.data[(workload, s, mode)]
                      for s in ("2 MB", "4 MB", "8 MB")]
                assert fs[0] >= fs[1] >= fs[2]

    def test_fig11_tlb_improves_with_entries(self):
        result = run_experiment("fig11", MICRO)
        means = [result.data[e]["mean"] for e in sorted(result.data)]
        assert means == sorted(means)

    def test_table8_both_workloads_improve(self):
        result = run_experiment("table8", MICRO)
        for workload in ("village", "city"):
            rates = [result.data[(workload, e)] for e in (1, 2, 4, 8, 16)]
            assert rates == sorted(rates)

    def test_abl_zfirst_reduces_depth(self):
        result = run_experiment("abl-zfirst", MICRO)
        for workload in ("village", "city"):
            base_d, z_d = result.data[workload]["depth"]
            assert z_d <= base_d

    def test_abl_raster_order_tiled_not_worse(self):
        result = run_experiment("abl-raster-order", MICRO)
        for workload in ("village", "city"):
            d = result.data[workload]
            assert d["tiled_miss"] <= d["scanline_miss"] * 1.2

    def test_locality_fractions_sum_to_one(self):
        result = run_experiment("locality", MICRO)
        for workload in ("village", "city"):
            reads = result.data[workload]["reads"]
            assert sum(reads.values()) == pytest.approx(1.0)
            frame_level = result.data[workload]["frame_level"]
            assert sum(frame_level.values()) == pytest.approx(1.0)

    def test_perf_model_agreement(self):
        result = run_experiment("perf", MICRO)
        for workload in ("village", "city"):
            timing, closed = result.data[(workload, "speedup")]
            assert timing == pytest.approx(closed, rel=0.2)

    def test_abl_line_size_tradeoff(self):
        result = run_experiment("abl-line-size", MICRO)
        for workload in ("village", "city"):
            d = result.data[workload]
            assert d["pair_miss_rate"] <= d["base_miss_rate"]
            assert d["pair_tiles"] >= d["base_tiles"]

    def test_abl_l1_assoc_two_way_recovers_conflicts(self):
        result = run_experiment("abl-l1-assoc", MICRO)
        assert result.data[1] >= result.data[2] >= result.data[4] * 0.99

    def test_abl_push_budget_monotone(self):
        result = run_experiment("abl-push-budget", MICRO)
        mbs = [result.data[f]["mb_per_frame"] for f in (0.4, 0.6, 0.8, 1.0, 1.5)]
        assert all(a >= b - 1e-9 for a, b in zip(mbs, mbs[1:]))

    def test_mrc_analytic_agrees_with_simulation(self):
        result = run_experiment("mrc", MICRO)
        for mode in ("bilinear", "trilinear"):
            d = result.data[mode]
            assert d["max_abs_err_pp"] <= 1.0
            assert d["within_tolerance"]
            assert d["timing"]["refs_per_s"] > 0
        assert result.data["l2"]["opt_ge_clock"]
        hist = result.data["histograms"]
        assert sum(hist["per_class"]["compulsory"]) > 0

    def test_abl_replacement_opt_bounds_online(self):
        result = run_experiment("abl-replacement", MICRO)
        for data in (result.data, result.data["city"]):
            opt = data["belady"]["block_hit"]
            for policy in ("clock", "lru", "fifo", "random"):
                assert opt >= data[policy]["block_hit"] - 1e-12


class TestCLI:
    def test_main_runs_analytic_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig3", "table4"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "table4" in out
