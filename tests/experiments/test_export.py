"""Tests for CSV export of experiment payloads."""

import csv
from dataclasses import dataclass

import numpy as np
import pytest

from repro.experiments.export import export_csv, flatten_payload
from repro.experiments.reporting import ExperimentResult


@dataclass
class Stats:
    depth: float
    name: str


class TestFlatten:
    def test_arrays_become_series(self):
        series, scalars = flatten_payload({"a": np.arange(3)})
        assert series["a"].tolist() == [0, 1, 2]
        assert scalars == {}

    def test_nested_dicts_join_keys(self):
        series, _ = flatten_payload({"village": {"total": np.ones(2)}})
        assert "village/total" in series

    def test_tuple_keys_join(self):
        _, scalars = flatten_payload({("village", 2): 0.5})
        assert scalars["village/2"] == 0.5

    def test_dataclass_fields_flatten(self):
        _, scalars = flatten_payload({"stats": Stats(depth=2.5, name="v")})
        assert scalars["stats/depth"] == 2.5
        assert scalars["stats/name"] == "v"

    def test_numeric_lists_become_series(self):
        series, _ = flatten_payload({"xs": [1.0, 2.0, 3.0]})
        assert series["xs"].tolist() == [1.0, 2.0, 3.0]

    def test_odd_values_kept_as_repr(self):
        _, scalars = flatten_payload({"weird": None})
        assert scalars["weird"] == "None"


class TestExport:
    def _result(self):
        return ExperimentResult(
            experiment_id="figX",
            title="t",
            text="b",
            data={"curve": np.array([1.0, 2.0]), "mean": 1.5},
        )

    def test_writes_both_files(self, tmp_path):
        paths = export_csv(self._result(), tmp_path)
        names = sorted(p.name for p in paths)
        assert names == ["figX_scalars.csv", "figX_series.csv"]

    def test_series_long_format(self, tmp_path):
        export_csv(self._result(), tmp_path)
        with open(tmp_path / "figX_series.csv") as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["series", "frame", "value"]
        assert rows[1] == ["curve", "0", "1.0"]
        assert rows[2] == ["curve", "1", "2.0"]

    def test_scalars_file(self, tmp_path):
        export_csv(self._result(), tmp_path)
        with open(tmp_path / "figX_scalars.csv") as f:
            rows = dict(list(csv.reader(f))[1:])
        assert rows["mean"] == "1.5"

    def test_empty_payload_writes_nothing(self, tmp_path):
        r = ExperimentResult("figY", "t", "b", data={})
        assert export_csv(r, tmp_path) == []

    def test_cli_csv_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["table4", "--csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "table4_scalars.csv").exists()
