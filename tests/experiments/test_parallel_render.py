"""Tests for parallel trace rendering."""

import numpy as np
import pytest

from repro.experiments.config import Scale
from repro.experiments.traces import render_trace, render_workers
from repro.texture.sampler import FilterMode

MICRO = Scale(width=64, height=48, frames=4, detail=0.2, name="micro")


class TestParallelRender:
    def test_parallel_identical_to_serial(self):
        serial = render_trace("city", MICRO, FilterMode.POINT, workers=1)
        parallel = render_trace("city", MICRO, FilterMode.POINT, workers=2)
        assert serial.meta == parallel.meta
        for a, b in zip(serial.frames, parallel.frames):
            assert np.array_equal(a.refs, b.refs)
            assert np.array_equal(a.weights, b.weights)
            assert a.n_fragments == b.n_fragments
            assert np.array_equal(a.object_offsets, b.object_offsets)

    def test_more_workers_than_frames(self):
        trace = render_trace("city", MICRO, FilterMode.POINT, workers=16)
        assert trace.meta.n_frames == MICRO.frames

    def test_variants_supported(self):
        trace = render_trace(
            "city", MICRO, FilterMode.POINT, z_first=True, workers=2
        )
        assert trace.meta.workload == "city+zfirst"

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_RENDER_WORKERS", raising=False)
        assert render_workers() == 1
        monkeypatch.setenv("REPRO_RENDER_WORKERS", "6")
        assert render_workers() == 6
        monkeypatch.setenv("REPRO_RENDER_WORKERS", "junk")
        assert render_workers() == 1
        monkeypatch.setenv("REPRO_RENDER_WORKERS", "0")
        assert render_workers() == 1
