"""Tests for the ASCII reporting helpers."""

import numpy as np

from repro.experiments.reporting import (
    ExperimentResult,
    format_series,
    format_table,
    kb,
    mb,
)


class TestFormatters:
    def test_mb(self):
        assert mb(2 * 1024 * 1024) == "2.00 MB"

    def test_kb(self):
        assert kb(1536) == "1.5 KB"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "long"], [["xxxx", "1"], ["y", "22"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        # Columns align: 'long' starts at the same offset everywhere.
        col = lines[0].index("long")
        assert lines[2][col] == "1"

    def test_empty_rows(self):
        out = format_table(["h"], [])
        assert "h" in out


class TestFormatSeries:
    def test_short_series_full(self):
        out = format_series("x", np.array([1.0, 2.0, 3.0]))
        assert out == "x: 1 2 3"

    def test_long_series_downsampled(self):
        out = format_series("x", np.arange(100.0), max_points=5)
        assert len(out.split(":")[1].split()) == 5

    def test_custom_format(self):
        out = format_series("x", np.array([0.12345]), fmt="{:.2f}")
        assert "0.12" in out


class TestExperimentResult:
    def test_render_includes_header(self):
        r = ExperimentResult("fig1", "a title", "body", scale_name="small")
        text = r.render()
        assert "fig1" in text
        assert "a title" in text
        assert "[scale=small]" in text
        assert text.endswith("body")

    def test_render_without_scale(self):
        r = ExperimentResult("fig1", "t", "b")
        assert "[scale=" not in r.render()
