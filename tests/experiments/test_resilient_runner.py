"""Tests for the resilient batch runner (isolation, journal, resume)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.__main__ import main
from repro.experiments.runner import (
    EXPERIMENTS,
    run_experiment_isolated,
)
from repro.reliability.runjournal import RunJournal


@pytest.fixture
def boom(monkeypatch):
    """Register a 'boom' experiment that fails until told otherwise."""
    state = {"fail": True, "calls": 0}

    def run(scale=None):
        state["calls"] += 1
        if state["fail"]:
            raise RuntimeError("injected failure")
        from repro.experiments.reporting import ExperimentResult

        return ExperimentResult("boom", "Boom", "recovered fine", scale_name="x")

    monkeypatch.setitem(EXPERIMENTS, "boom", ("Forced failure", run))
    return state


class TestIsolation:
    def test_outcome_captures_failure(self, boom):
        outcome = run_experiment_isolated("boom")
        assert not outcome.ok
        assert isinstance(outcome.error, ExperimentError)
        assert outcome.error.experiment_id == "boom"
        assert "injected failure" in outcome.error.traceback_text

    def test_unknown_id_still_raises(self):
        with pytest.raises(ValueError):
            run_experiment_isolated("fig99")

    def test_success_passes_through(self):
        outcome = run_experiment_isolated("fig3")
        assert outcome.ok
        assert outcome.result.experiment_id == "fig3"


class TestResilientMain:
    def test_batch_continues_past_failure(self, boom, tmp_path, capsys):
        journal = tmp_path / "j.json"
        rc = main(["fig3", "boom", "table4", "--journal", str(journal)])
        assert rc == 1
        captured = capsys.readouterr()
        # Both healthy experiments ran to completion around the failure.
        assert "=== fig3" in captured.out
        assert "=== table4" in captured.out
        assert "injected failure" in captured.err
        assert "FAILED: boom" in captured.out
        loaded = RunJournal.load(journal)
        assert loaded.completed_ids() == {"fig3", "table4"}
        assert loaded.failed_ids() == {"boom"}

    def test_fail_fast_aborts(self, boom, tmp_path, capsys):
        rc = main(
            ["boom", "fig3", "--fail-fast", "--journal", str(tmp_path / "j.json")]
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "=== fig3" not in captured.out
        assert "aborted by --fail-fast" in captured.out

    def test_resume_reruns_only_failures(self, boom, tmp_path, capsys):
        journal = tmp_path / "j.json"
        assert main(["fig3", "boom", "table4", "--journal", str(journal)]) == 1
        boom["fail"] = False
        calls_before = boom["calls"]
        capsys.readouterr()

        rc = main(
            ["fig3", "boom", "table4", "--resume", "--journal", str(journal)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("skipped (completed in journal)") == 2
        assert "recovered fine" in out
        assert boom["calls"] == calls_before + 1
        assert RunJournal.load(journal).completed_ids() == {
            "fig3", "boom", "table4",
        }

    def test_resume_ignores_other_scale(self, tmp_path, capsys):
        journal = tmp_path / "j.json"
        assert main(["fig3", "--scale", "small", "--journal", str(journal)]) == 0
        capsys.readouterr()
        # A bench-scale resume must not trust the small-scale record.
        rc = main(["fig3", "--resume", "--scale", "bench", "--journal", str(journal)])
        assert rc == 0
        assert "skipped" not in capsys.readouterr().out

    def test_successful_batch_exits_zero(self, tmp_path, capsys):
        rc = main(["fig3", "table4", "--journal", str(tmp_path / "j.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2/2 experiments passed" in out

    def test_unknown_experiment_raises(self, tmp_path):
        with pytest.raises(ValueError):
            main(["fig99", "--journal", str(tmp_path / "j.json")])
