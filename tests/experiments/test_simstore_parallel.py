"""Tests for the persistent simulation store and the parallel sweep engine."""

import numpy as np
import pytest

from repro.core.hierarchy import MultiLevelTextureCache, TraceRunResult
from repro.errors import ConfigError, CorruptSimCacheWarning
from repro.experiments import simstore
from repro.experiments.config import Scale
from repro.experiments.parallel import default_jobs, simulate_many
from repro.experiments.simcache import (
    build_config,
    clear_simulation_cache,
    prewarm,
    run_hierarchy,
    simulate,
)
from repro.experiments.traces import get_trace
from repro.reliability.transfer import FrameTransferStats
from repro.texture.sampler import FilterMode

MICRO = Scale(width=64, height=48, frames=2, detail=0.2, name="micro")


@pytest.fixture
def fresh_store(isolated_sim_cache):
    clear_simulation_cache()
    simstore.clear()
    yield isolated_sim_cache
    clear_simulation_cache()
    simstore.clear()


def micro_trace():
    return get_trace("city", MICRO, FilterMode.POINT)


def simulate_directly(trace, config):
    return MultiLevelTextureCache(config, trace.address_space).run_trace(trace)


class TestStoreRoundTrip:
    def test_full_hierarchy_result_round_trips(self, fresh_store):
        trace = micro_trace()
        config = build_config(l1_bytes=2048, l2_bytes=128 * 1024, tlb_entries=4)
        result = simulate_directly(trace, config)
        path = simstore.save(trace, config, result)
        assert path is not None and path.is_file()
        loaded = simstore.load(trace, config)
        assert loaded is not None
        assert loaded.config == config
        assert loaded.frames == result.frames

    def test_transfer_columns_round_trip(self, fresh_store):
        trace = micro_trace()
        config = build_config(l1_bytes=2048, l2_bytes=128 * 1024)
        result = simulate_directly(trace, config)
        for i, frame in enumerate(result.frames):
            frame.transfer = FrameTransferStats(
                requested_blocks=10 + i,
                retried_transfers=i,
                retry_bytes=64 * i,
                stale_blocks=i % 2,
                latency_spikes=i,
                backoff_us=1.5 * i,
            )
        simstore.save(trace, config, result)
        loaded = simstore.load(trace, config)
        assert loaded is not None
        assert loaded.frames == result.frames

    def test_distinct_configs_get_distinct_entries(self, fresh_store):
        trace = micro_trace()
        a = build_config(l1_bytes=2048)
        b = build_config(l1_bytes=4096)
        assert simstore.entry_path(trace, a) != simstore.entry_path(trace, b)
        simstore.save(trace, a, simulate_directly(trace, a))
        assert simstore.load(trace, b) is None

    def test_store_off(self, fresh_store, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CACHE", "off")
        trace = micro_trace()
        config = build_config(l1_bytes=2048)
        assert simstore.entry_path(trace, config) is None
        assert simstore.save(trace, config, simulate_directly(trace, config)) is None
        assert simstore.load(trace, config) is None


class TestConcurrentWriters:
    def test_save_dedupes_existing_entry(self, fresh_store):
        trace = micro_trace()
        config = build_config(l1_bytes=2048, l2_bytes=128 * 1024)
        result = simulate_directly(trace, config)
        path = simstore.save(trace, config, result)
        before = path.read_bytes()
        stat = path.stat()
        # A second (concurrent) writer finds the entry present and skips
        # the write entirely: same path back, file untouched.
        again = simstore.save(trace, config, result)
        assert again == path
        assert path.stat().st_mtime_ns == stat.st_mtime_ns
        assert path.read_bytes() == before

    def test_racing_writers_produce_identical_bytes(self, fresh_store):
        # Two workers racing through the dedupe window both write; the
        # writer is byte-deterministic, so the atomic rename is harmless
        # whichever lands last.
        trace = micro_trace()
        config = build_config(l1_bytes=2048, l2_bytes=128 * 1024)
        result = simulate_directly(trace, config)
        path = simstore.save(trace, config, result)
        before = path.read_bytes()
        simstore.save(trace, config, result, dedupe=False)
        assert path.read_bytes() == before
        assert simstore.load(trace, config).frames == result.frames

    def test_quarantine_race_is_silent_when_peer_won(self, fresh_store):
        import warnings

        trace = micro_trace()
        config = build_config(l1_bytes=2048)
        simstore.save(trace, config, simulate_directly(trace, config))
        path = simstore.entry_path(trace, config)
        path.unlink()  # a concurrent worker already quarantined the entry
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            simstore._quarantine(path, "checksum mismatch")


class TestCorruptionHandling:
    def _stored_entry(self, fresh_store):
        trace = micro_trace()
        config = build_config(l1_bytes=2048, l2_bytes=128 * 1024, tlb_entries=4)
        result = simulate_directly(trace, config)
        path = simstore.save(trace, config, result)
        return trace, config, result, path

    def test_bitflip_quarantined_and_resimulated(self, fresh_store):
        import zipfile

        trace, config, result, path = self._stored_entry(fresh_store)
        # Flip bits inside one member's compressed payload (a flip in zip
        # padding would go unnoticed by design — it is never read).
        with zipfile.ZipFile(path) as z:
            info = z.getinfo("l1_misses.npy")
            start = info.header_offset + 30 + len(info.filename) + len(info.extra)
        raw = bytearray(path.read_bytes())
        for i in range(start, min(start + info.compress_size, len(raw))):
            raw[i] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.warns(CorruptSimCacheWarning):
            assert simstore.load(trace, config) is None
        assert not path.exists()  # moved out of the store
        assert list((fresh_store / "quarantine").iterdir())
        # The memoizing layer recovers transparently.
        fresh = simulate(trace, config)
        assert fresh.frames == result.frames

    def test_truncated_file_quarantined(self, fresh_store):
        trace, config, _, path = self._stored_entry(fresh_store)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.warns(CorruptSimCacheWarning):
            assert simstore.load(trace, config) is None
        assert not path.exists()

    def test_config_mismatch_inside_entry_rejected(self, fresh_store):
        # An entry whose embedded manifest disagrees with the requested
        # config (e.g. digest collision or tampering) must not be served.
        trace, config, result, path = self._stored_entry(fresh_store)
        other = build_config(l1_bytes=4096)
        path.rename(simstore.entry_path(trace, other))
        with pytest.warns(CorruptSimCacheWarning):
            assert simstore.load(trace, other) is None


class TestParallelSweep:
    def _points(self):
        trace = micro_trace()
        return [
            (trace, build_config(l1_bytes=l1, l2_bytes=l2))
            for l1 in (1024, 2048)
            for l2 in (None, 64 * 1024, 128 * 1024)
        ]

    def test_parallel_matches_serial(self, fresh_store):
        points = self._points()
        serial = [simulate_directly(t, c) for t, c in points]
        parallel = simulate_many(points, jobs=4)
        for s, p in zip(serial, parallel):
            assert s.frames == p.frames

    def test_results_persisted_and_reused(self, fresh_store):
        points = self._points()
        simulate_many(points, jobs=4)
        entries = list(fresh_store.glob("sim_*.npz"))
        assert len(entries) == len(points)
        # Second resolution is served purely from disk: no new entries,
        # identical payloads.
        again = simulate_many(points, jobs=1)
        assert len(list(fresh_store.glob("sim_*.npz"))) == len(points)
        for s, p in zip(again, simulate_many(points, jobs=4)):
            assert s.frames == p.frames

    def test_prewarm_fills_memo(self, fresh_store):
        points = self._points()
        prewarm(points, jobs=2)
        for trace, config in points:
            before = simulate(trace, config)
            assert simulate(trace, config) is before
            assert isinstance(before, TraceRunResult)

    def test_run_hierarchy_served_from_store_across_sessions(self, fresh_store):
        trace = micro_trace()
        a = run_hierarchy(trace, l1_bytes=2048, l2_bytes=128 * 1024)
        clear_simulation_cache()  # simulate a fresh CLI invocation
        b = run_hierarchy(trace, l1_bytes=2048, l2_bytes=128 * 1024)
        assert a is not b
        assert a.frames == b.frames

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6
        # An unparsable value is a loud ConfigError, not a silent fallback.
        monkeypatch.setenv("REPRO_JOBS", "bogus")
        with pytest.raises(ConfigError):
            default_jobs()
