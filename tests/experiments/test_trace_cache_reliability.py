"""Disk trace-cache reliability: corrupted entries are quarantined and
transparently re-rendered."""

import numpy as np
import pytest

from repro.errors import CorruptTraceWarning
from repro.experiments.config import Scale
from repro.experiments.traces import (
    _cache_key,
    clear_memory_cache,
    get_trace,
    quarantine_trace,
)
from repro.texture.sampler import FilterMode

MICRO = Scale(width=64, height=48, frames=2, detail=0.2, name="micro")


def cache_path(isolated_trace_cache):
    return (
        isolated_trace_cache
        / f"{_cache_key('city', MICRO, FilterMode.POINT, False, False)}.npz"
    )


class TestQuarantine:
    def test_corrupt_cache_entry_recovered(self, isolated_trace_cache):
        clear_memory_cache()
        original = get_trace("city", MICRO, FilterMode.POINT)
        path = cache_path(isolated_trace_cache)
        assert path.exists()

        # Bit-flip the cached archive, then force a cold read.
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        clear_memory_cache()

        with pytest.warns(CorruptTraceWarning, match="quarantined"):
            recovered = get_trace("city", MICRO, FilterMode.POINT)

        # The run still succeeds, with an identical re-render...
        for fa, fb in zip(original.frames, recovered.frames):
            assert np.array_equal(fa.refs, fb.refs)
        # ...the poisoned file moved to quarantine...
        qnames = [p.name for p in (isolated_trace_cache / "quarantine").iterdir()]
        assert path.name in qnames
        # ...and the cache slot was rewritten with a good copy.
        assert path.exists()
        clear_memory_cache()
        assert get_trace("city", MICRO, FilterMode.POINT) is not None

    def test_truncated_cache_entry_recovered(self, isolated_trace_cache):
        clear_memory_cache()
        get_trace("city", MICRO, FilterMode.POINT)
        path = cache_path(isolated_trace_cache)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        clear_memory_cache()
        with pytest.warns(CorruptTraceWarning):
            trace = get_trace("city", MICRO, FilterMode.POINT)
        assert trace.meta.n_frames == MICRO.frames

    def test_quarantine_names_do_not_collide(self, tmp_path):
        a = tmp_path / "x.npz"
        a.write_bytes(b"bad-1")
        first = quarantine_trace(a)
        b = tmp_path / "x.npz"
        b.write_bytes(b"bad-2")
        second = quarantine_trace(b)
        assert first != second
        assert first.read_bytes() == b"bad-1"
        assert second.read_bytes() == b"bad-2"
