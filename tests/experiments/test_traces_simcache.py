"""Tests for trace production/caching and simulation memoization."""

import numpy as np
import pytest

from repro.experiments.config import Scale
from repro.experiments.simcache import clear_simulation_cache, run_hierarchy
from repro.experiments.traces import clear_memory_cache, get_trace, render_trace
from repro.texture.sampler import FilterMode

MICRO = Scale(width=64, height=48, frames=2, detail=0.2, name="micro")


class TestRenderTrace:
    def test_renders_requested_shape(self):
        trace = render_trace("city", MICRO, FilterMode.POINT)
        assert trace.meta.workload == "city"
        assert trace.meta.n_frames == 2
        assert len(trace.frames) == 2
        assert trace.meta.filter_mode == "point"

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            render_trace("metropolis", MICRO, FilterMode.POINT)

    def test_variant_names_suffixed(self):
        z = render_trace("city", MICRO, FilterMode.POINT, z_first=True)
        assert z.meta.workload == "city+zfirst"
        t = render_trace("city", MICRO, FilterMode.POINT, tiled=True)
        assert t.meta.workload == "city+tiled"

    def test_deterministic(self):
        a = render_trace("city", MICRO, FilterMode.POINT)
        b = render_trace("city", MICRO, FilterMode.POINT)
        for fa, fb in zip(a.frames, b.frames):
            assert np.array_equal(fa.refs, fb.refs)


class TestGetTraceCaching:
    def test_memory_cache_returns_same_object(self):
        a = get_trace("city", MICRO, FilterMode.POINT)
        b = get_trace("city", MICRO, FilterMode.POINT)
        assert a is b

    def test_disk_cache_roundtrip(self, isolated_trace_cache):
        get_trace("city", MICRO, FilterMode.POINT)
        files = list(isolated_trace_cache.glob("*.npz"))
        assert files  # persisted
        clear_memory_cache()
        reloaded = get_trace("city", MICRO, FilterMode.POINT)
        assert reloaded.meta.workload == "city"

    def test_variants_cached_separately(self):
        a = get_trace("city", MICRO, FilterMode.POINT)
        b = get_trace("city", MICRO, FilterMode.POINT, z_first=True)
        assert a is not b
        assert b.meta.workload == "city+zfirst"

    def test_cache_off(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        clear_memory_cache()
        trace = get_trace("city", MICRO, FilterMode.POINT)
        assert trace.meta.workload == "city"
        clear_memory_cache()


class TestSimCache:
    def test_memoizes_identical_config(self):
        trace = get_trace("city", MICRO, FilterMode.POINT)
        clear_simulation_cache()
        a = run_hierarchy(trace, l1_bytes=2048)
        b = run_hierarchy(trace, l1_bytes=2048)
        assert a is b

    def test_distinct_configs_not_conflated(self):
        trace = get_trace("city", MICRO, FilterMode.POINT)
        a = run_hierarchy(trace, l1_bytes=2048)
        b = run_hierarchy(trace, l1_bytes=16384)
        assert a is not b
        assert b.l1_hit_rate >= a.l1_hit_rate

    def test_l2_and_tlb_options(self):
        trace = get_trace("city", MICRO, FilterMode.POINT)
        res = run_hierarchy(trace, l1_bytes=2048, l2_bytes=128 * 1024,
                            tlb_entries=4)
        assert res.config.l2 is not None
        assert res.frames[0].tlb is not None
