"""Unit tests for camera matrices and frustum culling."""

import numpy as np
import pytest

from repro.geometry.camera import Camera, look_at, perspective
from repro.geometry.frustum import Frustum


def _project(vp, point):
    homo = vp @ np.array([*point, 1.0])
    return homo[:3] / homo[3]


class TestLookAt:
    def test_eye_maps_to_origin(self):
        m = look_at(np.array([1.0, 2.0, 3.0]), np.array([0.0, 0.0, 0.0]), np.array([0.0, 1.0, 0.0]))
        out = m @ np.array([1.0, 2.0, 3.0, 1.0])
        assert np.allclose(out[:3], 0, atol=1e-12)

    def test_target_is_on_negative_z(self):
        eye = np.array([0.0, 0.0, 5.0])
        target = np.array([0.0, 0.0, 0.0])
        m = look_at(eye, target, np.array([0.0, 1.0, 0.0]))
        out = m @ np.array([*target, 1.0])
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(0.0, abs=1e-12)
        assert out[2] == pytest.approx(-5.0)

    def test_view_is_rigid(self):
        m = look_at(np.array([3.0, 4.0, 5.0]), np.array([0.0, 1.0, 0.0]), np.array([0.0, 1.0, 0.0]))
        # Rotation part must be orthonormal.
        r = m[:3, :3]
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-12)


class TestPerspective:
    def test_near_plane_maps_to_minus_one(self):
        p = perspective(90.0, 1.0, 1.0, 100.0)
        ndc = _project(p, (0, 0, -1.0))
        assert ndc[2] == pytest.approx(-1.0)

    def test_far_plane_maps_to_plus_one(self):
        p = perspective(90.0, 1.0, 1.0, 100.0)
        ndc = _project(p, (0, 0, -100.0))
        assert ndc[2] == pytest.approx(1.0)

    def test_fov_edge_maps_to_unit_y(self):
        p = perspective(90.0, 1.0, 1.0, 100.0)
        # At 90 deg fov, a point at 45 deg elevation hits y = +/-1 in NDC.
        ndc = _project(p, (0, 2.0, -2.0))
        assert ndc[1] == pytest.approx(1.0)

    def test_invalid_planes_raise(self):
        with pytest.raises(ValueError):
            perspective(60.0, 1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            perspective(60.0, 1.0, 10.0, 5.0)


class TestCamera:
    def test_view_projection_shape(self):
        cam = Camera(eye=np.array([0.0, 1.0, 5.0]), target=np.zeros(3))
        vp = cam.view_projection(640, 480)
        assert vp.shape == (4, 4)

    def test_point_in_front_lands_in_ndc_box(self):
        cam = Camera(eye=np.array([0.0, 0.0, 5.0]), target=np.zeros(3))
        ndc = _project(cam.view_projection(640, 480), (0.0, 0.0, 0.0))
        assert np.all(np.abs(ndc) <= 1.0 + 1e-9)


class TestFrustum:
    @pytest.fixture
    def frustum(self):
        cam = Camera(eye=np.array([0.0, 0.0, 10.0]), target=np.zeros(3), near=1.0, far=100.0)
        return Frustum(cam.view_projection(640, 480))

    def test_visible_sphere_kept(self, frustum):
        assert frustum.contains_sphere(np.zeros(3), 1.0)

    def test_sphere_behind_camera_culled(self, frustum):
        assert not frustum.contains_sphere(np.array([0.0, 0.0, 50.0]), 1.0)

    def test_sphere_far_to_the_side_culled(self, frustum):
        assert not frustum.contains_sphere(np.array([1000.0, 0.0, 0.0]), 1.0)

    def test_sphere_straddling_plane_kept(self, frustum):
        # Centered outside the near plane but radius crosses it.
        assert frustum.contains_sphere(np.array([0.0, 0.0, 9.5]), 2.0)

    def test_points_any_visible(self, frustum):
        pts = np.array([[0.0, 0.0, 0.0], [500.0, 0.0, 0.0]])
        assert frustum.contains_points_any(pts)

    def test_points_all_outside_one_plane_culled(self, frustum):
        pts = np.array([[0.0, 0.0, 200.0], [0.0, 5.0, 300.0]])
        assert not frustum.contains_points_any(pts)
