"""Unit tests for meshes, primitives, and camera paths."""

import numpy as np
import pytest

from repro.geometry.mesh import Mesh, MeshInstance
from repro.geometry.paths import CameraPath, Keyframe
from repro.geometry.primitives import (
    make_box,
    make_cylinder,
    make_ground_grid,
    make_prism_roof,
    make_quad,
    make_sky_dome,
)
from repro.geometry.transforms import translation


class TestMeshValidation:
    def test_mismatched_uv_count_raises(self):
        with pytest.raises(ValueError):
            Mesh(
                positions=np.zeros((3, 3)),
                uvs=np.zeros((2, 2)),
                triangles=np.array([[0, 1, 2]]),
            )

    def test_out_of_range_index_raises(self):
        with pytest.raises(ValueError):
            Mesh(
                positions=np.zeros((3, 3)),
                uvs=np.zeros((3, 2)),
                triangles=np.array([[0, 1, 5]]),
            )

    def test_merged_with_offsets_indices(self):
        a = make_quad(1, 1)
        b = make_quad(2, 2)
        merged = a.merged_with(b)
        assert merged.vertex_count == 8
        assert merged.triangle_count == 4
        assert int(merged.triangles[2:].min()) == 4


class TestPrimitives:
    def test_quad_counts(self):
        q = make_quad(2, 3, uv_repeat=(2, 5))
        assert q.vertex_count == 4
        assert q.triangle_count == 2
        assert q.uvs.max(axis=0).tolist() == [2.0, 5.0]

    def test_box_has_five_faces_by_default(self):
        b = make_box(1, 2, 3)
        assert b.triangle_count == 10
        assert b.positions[:, 1].min() == 0.0
        assert b.positions[:, 1].max() == 2.0

    def test_box_with_bottom(self):
        assert make_box(1, 1, 1, include_bottom=True).triangle_count == 12

    def test_roof_spans_footprint(self):
        r = make_prism_roof(4, 2, 1.5)
        assert r.positions[:, 0].min() == -2.0
        assert r.positions[:, 0].max() == 2.0
        assert r.positions[:, 1].max() == 1.5

    def test_ground_grid_cells(self):
        g = make_ground_grid(10.0, cells=4)
        assert g.vertex_count == 25
        assert g.triangle_count == 32
        assert np.allclose(g.positions[:, 1], 0.0)

    def test_sky_dome_double_sided(self):
        d = make_sky_dome(100.0, slices=6, stacks=2)
        assert d.double_sided
        assert d.positions[:, 1].min() >= -1e-9

    def test_cylinder_counts(self):
        c = make_cylinder(1.0, 5.0, slices=8)
        assert c.triangle_count == 16
        assert c.positions[:, 1].max() == 5.0


class TestMeshInstance:
    def test_world_positions_apply_model(self):
        inst = MeshInstance(make_quad(2, 2), translation(10, 0, 0), texture_id=0)
        assert np.allclose(inst.world_positions()[:, 0].mean(), 10.0)

    def test_bounding_sphere_contains_vertices(self):
        inst = MeshInstance(make_box(2, 4, 6), translation(5, 0, -3), texture_id=1)
        center, radius = inst.bounding_sphere()
        d = np.linalg.norm(inst.world_positions() - center, axis=1)
        assert np.all(d <= radius + 1e-9)

    def test_bounding_sphere_cached(self):
        inst = MeshInstance(make_quad(1, 1), translation(0, 0, 0), texture_id=0)
        assert inst.bounding_sphere() is inst.bounding_sphere()


class TestCameraPath:
    def _path(self):
        return CameraPath(
            [
                Keyframe(0.0, (0, 1, 0), (0, 1, -10)),
                Keyframe(0.5, (5, 1, -5), (5, 1, -15)),
                Keyframe(1.0, (10, 1, -10), (10, 1, -20)),
            ]
        )

    def test_needs_two_keyframes(self):
        with pytest.raises(ValueError):
            CameraPath([Keyframe(0.0, (0, 0, 0), (0, 0, -1))])

    def test_times_must_increase(self):
        with pytest.raises(ValueError):
            CameraPath(
                [
                    Keyframe(0.5, (0, 0, 0), (0, 0, -1)),
                    Keyframe(0.5, (1, 0, 0), (1, 0, -1)),
                ]
            )

    def test_endpoints_match_keyframes(self):
        p = self._path()
        assert np.allclose(p.camera_at(0.0).eye, [0, 1, 0])
        assert np.allclose(p.camera_at(1.0).eye, [10, 1, -10])

    def test_frames_count_and_smoothness(self):
        p = self._path()
        cams = p.frames(33)
        assert len(cams) == 33
        eyes = np.array([c.eye for c in cams])
        steps = np.linalg.norm(np.diff(eyes, axis=0), axis=1)
        # Incremental viewpoint motion: no frame jumps wildly.
        assert steps.max() < 2.0

    def test_single_frame(self):
        assert len(self._path().frames(1)) == 1

    def test_degenerate_eye_equals_target_guarded(self):
        p = CameraPath(
            [
                Keyframe(0.0, (0, 0, 0), (0, 0, 0)),
                Keyframe(1.0, (1, 0, 0), (1, 0, 0)),
            ]
        )
        cam = p.camera_at(0.5)
        assert np.linalg.norm(cam.target - cam.eye) > 1e-9
