"""Property tests for camera paths (smoothness and interpolation bounds)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.paths import CameraPath, Keyframe

position = st.tuples(
    st.floats(-100, 100), st.floats(0.1, 50), st.floats(-100, 100)
)


@st.composite
def paths(draw):
    n = draw(st.integers(2, 6))
    ts = sorted(draw(st.lists(st.floats(0.0, 1.0), min_size=n, max_size=n,
                              unique=True)))
    keys = []
    for t in ts:
        eye = draw(position)
        target = draw(position)
        keys.append(Keyframe(t, eye, target))
    return CameraPath(keys)


class TestPathProperties:
    @given(paths())
    @settings(max_examples=50, deadline=None)
    def test_property_endpoints_interpolate_keyframes(self, path):
        first, last = path.keyframes[0], path.keyframes[-1]
        assert np.allclose(path.camera_at(first.t).eye, first.eye, atol=1e-9)
        assert np.allclose(path.camera_at(last.t).eye, last.eye, atol=1e-9)

    @given(paths(), st.floats(-0.5, 1.5))
    @settings(max_examples=100, deadline=None)
    def test_property_queries_clamped_and_finite(self, path, t):
        cam = path.camera_at(t)
        assert np.all(np.isfinite(cam.eye))
        assert np.all(np.isfinite(cam.target))
        assert np.linalg.norm(cam.target - cam.eye) > 1e-10

    @given(paths(), st.integers(2, 40))
    @settings(max_examples=50, deadline=None)
    def test_property_frames_motion_bounded(self, path, n):
        """Catmull-Rom stays within a bounded overshoot of the control
        points: the sampled path cannot fly off to infinity."""
        eyes = np.array([c.eye for c in path.frames(n)])
        ctrl = np.array([k.eye for k in path.keyframes])
        lo = ctrl.min(axis=0)
        hi = ctrl.max(axis=0)
        span = np.maximum(hi - lo, 1.0)
        assert np.all(eyes >= lo - span)
        assert np.all(eyes <= hi + span)

    @given(paths())
    @settings(max_examples=50, deadline=None)
    def test_property_sampling_deterministic(self, path):
        a = np.array([c.eye for c in path.frames(37)])
        b = np.array([c.eye for c in path.frames(37)])
        assert np.array_equal(a, b)

    def test_evenly_spaced_keyframes_are_smooth(self):
        """With well-spaced keyframes (how the workloads use paths), dense
        samples never teleport."""
        keys = [
            Keyframe(i / 4, (10.0 * i, 1.0, -5.0 * i), (10.0 * i, 1.0, -5.0 * i - 10))
            for i in range(5)
        ]
        path = CameraPath(keys)
        eyes = np.array([c.eye for c in path.frames(200)])
        steps = np.linalg.norm(np.diff(eyes, axis=0), axis=1)
        extent = np.linalg.norm(eyes.max(axis=0) - eyes.min(axis=0))
        assert steps.max() <= 0.05 * extent
