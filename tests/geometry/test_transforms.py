"""Unit tests for repro.geometry.transforms."""

import math

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.transforms import (
    compose,
    identity,
    rotation_x,
    rotation_y,
    rotation_z,
    scaling,
    transform_directions,
    transform_points,
    translation,
)

finite = st.floats(-1e3, 1e3, allow_nan=False)


class TestBuilders:
    def test_identity_leaves_points_alone(self):
        pts = np.array([[1.0, 2.0, 3.0], [-4.0, 0.0, 5.0]])
        assert np.allclose(transform_points(identity(), pts), pts)

    def test_translation_moves_points(self):
        out = transform_points(translation(1, 2, 3), np.array([[0.0, 0.0, 0.0]]))
        assert np.allclose(out, [[1, 2, 3]])

    def test_translation_does_not_move_directions(self):
        out = transform_directions(translation(5, 5, 5), np.array([[1.0, 0.0, 0.0]]))
        assert np.allclose(out, [[1, 0, 0]])

    def test_uniform_scaling_single_arg(self):
        out = transform_points(scaling(2), np.array([[1.0, 1.0, 1.0]]))
        assert np.allclose(out, [[2, 2, 2]])

    def test_nonuniform_scaling(self):
        out = transform_points(scaling(2, 3, 4), np.array([[1.0, 1.0, 1.0]]))
        assert np.allclose(out, [[2, 3, 4]])


class TestRotations:
    def test_rotation_x_sends_y_to_z(self):
        out = transform_points(rotation_x(math.pi / 2), np.array([[0.0, 1.0, 0.0]]))
        assert np.allclose(out, [[0, 0, 1]], atol=1e-12)

    def test_rotation_y_sends_z_to_x(self):
        out = transform_points(rotation_y(math.pi / 2), np.array([[0.0, 0.0, 1.0]]))
        assert np.allclose(out, [[1, 0, 0]], atol=1e-12)

    def test_rotation_z_sends_x_to_y(self):
        out = transform_points(rotation_z(math.pi / 2), np.array([[1.0, 0.0, 0.0]]))
        assert np.allclose(out, [[0, 1, 0]], atol=1e-12)

    @given(st.floats(-10, 10))
    def test_property_rotations_preserve_length(self, angle):
        p = np.array([[1.0, 2.0, 3.0]])
        for rot in (rotation_x, rotation_y, rotation_z):
            out = transform_points(rot(angle), p)
            assert np.isclose(np.linalg.norm(out), np.linalg.norm(p))

    @given(st.floats(-10, 10))
    def test_property_rotation_inverse_is_negative_angle(self, angle):
        m = compose(rotation_y(-angle), rotation_y(angle))
        assert np.allclose(m, identity(), atol=1e-9)


class TestCompose:
    def test_compose_order_rightmost_first(self):
        # compose(T, S) applies S first: scale then translate.
        m = compose(translation(10, 0, 0), scaling(2))
        out = transform_points(m, np.array([[1.0, 0.0, 0.0]]))
        assert np.allclose(out, [[12, 0, 0]])

    def test_compose_empty_is_identity(self):
        assert np.allclose(compose(), identity())

    @given(finite, finite, finite)
    def test_property_translation_composes_additively(self, x, y, z):
        m = compose(translation(x, y, z), translation(1, 2, 3))
        out = transform_points(m, np.array([[0.0, 0.0, 0.0]]))
        assert np.allclose(out, [[x + 1, y + 2, z + 3]])
