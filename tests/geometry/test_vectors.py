"""Unit tests for repro.geometry.vectors."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.vectors import cross, dot, normalize, vec3, vec4


class TestConstructors:
    def test_vec3_values_and_dtype(self):
        v = vec3(1, 2, 3)
        assert v.dtype == np.float64
        assert v.tolist() == [1.0, 2.0, 3.0]

    def test_vec4_values(self):
        assert vec4(1, 2, 3, 4).tolist() == [1.0, 2.0, 3.0, 4.0]


class TestNormalize:
    def test_unit_length(self):
        v = normalize(vec3(3, 4, 0))
        assert np.allclose(v, [0.6, 0.8, 0.0])

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            normalize(vec3(0, 0, 0))

    @given(
        st.tuples(
            st.floats(-1e6, 1e6), st.floats(-1e6, 1e6), st.floats(-1e6, 1e6)
        ).filter(lambda t: sum(abs(x) for x in t) > 1e-3)
    )
    def test_property_norm_is_one(self, xyz):
        v = normalize(vec3(*xyz))
        assert np.isclose(np.linalg.norm(v), 1.0)


class TestCrossDot:
    def test_cross_right_handed(self):
        assert np.allclose(cross(vec3(1, 0, 0), vec3(0, 1, 0)), [0, 0, 1])

    def test_dot_returns_python_float(self):
        d = dot(vec3(1, 2, 3), vec3(4, 5, 6))
        assert isinstance(d, float)
        assert d == 32.0

    def test_cross_is_orthogonal(self):
        a, b = vec3(1, 2, 3), vec3(-2, 1, 5)
        c = cross(a, b)
        assert abs(dot(a, c)) < 1e-12
        assert abs(dot(b, c)) < 1e-12
