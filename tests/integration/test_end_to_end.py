"""End-to-end integration: render -> trace -> persist -> simulate.

These tests run the entire study pipeline at micro scale and check the
cross-layer contracts the experiments rely on.
"""

import numpy as np
import pytest

from repro.core.architectures import (
    L2CachingArchitecture,
    PullArchitecture,
    PushArchitecture,
)
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig
from repro.experiments.config import Scale
from repro.experiments.traces import render_trace
from repro.texture.sampler import FilterMode
from repro.trace.stats import workload_stats
from repro.trace.tracefile import load_trace, save_trace
from repro.trace.workingset import l2_memory_curve, push_memory_curve

MICRO = Scale(width=96, height=72, frames=4, detail=0.25, name="micro")


@pytest.fixture(scope="module")
def village_trace():
    return render_trace("village", MICRO, FilterMode.BILINEAR)


class TestPipelineContracts:
    def test_fragments_imply_reads(self, village_trace):
        for frame in village_trace.frames:
            assert frame.texel_reads == frame.n_fragments * 4  # bilinear

    def test_persisted_trace_simulates_identically(self, village_trace, tmp_path):
        path = tmp_path / "v.npz"
        save_trace(village_trace, path)
        reloaded = load_trace(path)
        l1 = L1CacheConfig(size_bytes=2048)
        a = PullArchitecture(l1).run(village_trace)
        b = PullArchitecture(l1).run(reloaded)
        assert a.l1_hit_rate == b.l1_hit_rate
        assert a.agp_bytes_per_frame().tolist() == b.agp_bytes_per_frame().tolist()

    def test_stats_and_architectures_consistent(self, village_trace):
        stats = workload_stats(village_trace)
        assert stats.depth_complexity > 0.5
        push = PushArchitecture().run(village_trace)
        curve = push_memory_curve(village_trace)
        assert [p.memory_bytes for p in push] == curve.tolist()

    def test_l2_min_memory_below_push(self, village_trace):
        l2 = l2_memory_curve(village_trace, 16)
        push = push_memory_curve(village_trace)
        assert l2.sum() < push.sum()

    def test_full_study_invariant_l2_saves_bandwidth(self, village_trace):
        l1 = L1CacheConfig(size_bytes=2048)
        pull = PullArchitecture(l1).run(village_trace)
        l2 = L2CachingArchitecture(
            l1, L2CacheConfig(size_bytes=256 * 1024), tlb_entries=8
        ).run(village_trace)
        assert l2.mean_agp_bytes_per_frame < pull.mean_agp_bytes_per_frame
        assert 0.0 < l2.tlb_hit_rate <= 1.0

    def test_all_refs_within_texture_bounds(self, village_trace):
        """Every emitted tile reference must address a real tile: valid tid,
        a MIP level the texture has, and tile coordinates inside the level."""
        from repro.texture.tiling import unpack_tile_refs

        textures = village_trace.textures
        for frame in village_trace.frames:
            f = unpack_tile_refs(frame.refs)
            assert f.tid.min(initial=0) >= 0
            assert f.tid.max(initial=0) < len(textures)
            for tid in np.unique(f.tid):
                tex = textures[int(tid)]
                sel = f.tid == tid
                assert f.mip[sel].max() < tex.level_count
                for m in np.unique(f.mip[sel]):
                    w, h = tex.level_dims(int(m))
                    lvl = sel & (f.mip == m)
                    assert f.tile_x[lvl].max() * 4 < w + 4
                    assert f.tile_y[lvl].max() * 4 < h + 4

    def test_object_offsets_recorded(self, village_trace):
        for frame in village_trace.frames:
            assert frame.object_offsets is not None
            ids = frame.object_ids()
            assert len(ids) == len(frame.refs)
            # Object ids are non-decreasing in stream order.
            assert np.all(np.diff(ids) >= 0)

    def test_inter_frame_locality_exists(self, village_trace):
        """The premise of the whole paper: frames share texture blocks."""
        from repro.trace.workingset import (
            per_frame_new_blocks,
            per_frame_unique_blocks,
        )

        uniques = per_frame_unique_blocks(village_trace, 16)
        new = per_frame_new_blocks(uniques)
        totals = np.array([len(u) for u in uniques])
        # After the first frame, most blocks were already used last frame.
        assert np.all(new[1:] < totals[1:])
