"""Differential proof: batched rasterizer == per-triangle reference, bitwise.

The batched engine (:mod:`repro.raster.batch`, and the pipeline built on
it) must be *bit-identical* — not merely close — to the per-triangle
reference, for every field of every fragment and for the final packed
trace streams, under both raster orders, with clipped geometry, secondary
textures, depth testing, and shading. These tests are that proof.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raster.batch import FragmentBatch, rasterize_triangles
from repro.raster.pipeline import RenderOptions, Renderer
from repro.raster.rasterizer import RasterOrder, rasterize_triangle
from repro.scenes import WORKLOAD_BUILDERS
from repro.texture.sampler import FilterMode

from tests.raster.test_pipeline import camera, simple_scene

W, H = 48, 40
TEXW, TEXH = 64, 32


def reference_batch(screen, inv_w, uv, z_ndc, double_sided, order):
    """The ground truth: the per-triangle loop, concatenated."""
    cols = {k: [] for k in ("xs", "ys", "z", "u", "v", "lod", "tri_ids")}
    for i in range(screen.shape[0]):
        frags = rasterize_triangle(
            screen_xy=screen[i],
            inv_w=inv_w[i],
            uv=uv[i],
            z_ndc=z_ndc[i],
            width=W,
            height=H,
            tex_width=TEXW,
            tex_height=TEXH,
            double_sided=double_sided,
            order=order,
        )
        if frags is None:
            continue
        for k in ("xs", "ys", "z", "u", "v", "lod"):
            cols[k].append(getattr(frags, k))
        cols["tri_ids"].append(np.full(len(frags), i, dtype=np.int64))
    if not cols["xs"]:
        return None
    return {k: np.concatenate(v) for k, v in cols.items()}


def assert_batches_identical(batch: FragmentBatch, ref: dict | None):
    if ref is None:
        assert len(batch) == 0
        return
    for k in ("xs", "ys", "z", "u", "v", "lod", "tri_ids"):
        got = getattr(batch, k if k != "tri_ids" else "tri_ids")
        np.testing.assert_array_equal(got, ref[k], err_msg=k)
        assert got.dtype == ref[k].dtype, k


coord = st.floats(-30.0, 80.0)
invw = st.floats(0.05, 4.0)
uvc = st.floats(-2.0, 3.0)
zc = st.floats(-1.0, 1.0)


@st.composite
def triangle_batches(draw):
    n = draw(st.integers(0, 12))
    screen = np.array(
        [[draw(coord) for _ in range(6)] for _ in range(n)], dtype=np.float64
    ).reshape(n, 3, 2)
    inv_w = np.array(
        [[draw(invw) for _ in range(3)] for _ in range(n)], dtype=np.float64
    ).reshape(n, 3)
    uv = np.array(
        [[draw(uvc) for _ in range(6)] for _ in range(n)], dtype=np.float64
    ).reshape(n, 3, 2)
    z = np.array(
        [[draw(zc) for _ in range(3)] for _ in range(n)], dtype=np.float64
    ).reshape(n, 3)
    return screen, inv_w, uv, z


class TestKernelDifferential:
    @given(triangle_batches(), st.booleans(),
           st.sampled_from([RasterOrder.SCANLINE, RasterOrder.TILED]))
    @settings(max_examples=150, deadline=None)
    def test_property_bit_identical(self, batch_args, double_sided, order):
        screen, inv_w, uv, z = batch_args
        got = rasterize_triangles(
            screen_xy=screen, inv_w=inv_w, uv=uv, z_ndc=z,
            width=W, height=H, tex_width=TEXW, tex_height=TEXH,
            double_sided=double_sided, order=order,
        )
        ref = reference_batch(screen, inv_w, uv, z, double_sided, order)
        assert_batches_identical(got, ref)

    @given(triangle_batches())
    @settings(max_examples=30, deadline=None)
    def test_property_block_budget_invariant(self, batch_args):
        # Tiny candidate budgets force multi-block expansion; the result
        # must not depend on the blocking.
        screen, inv_w, uv, z = batch_args
        full = rasterize_triangles(
            screen_xy=screen, inv_w=inv_w, uv=uv, z_ndc=z,
            width=W, height=H, tex_width=TEXW, tex_height=TEXH,
            double_sided=True,
        )
        small = rasterize_triangles(
            screen_xy=screen, inv_w=inv_w, uv=uv, z_ndc=z,
            width=W, height=H, tex_width=TEXW, tex_height=TEXH,
            double_sided=True, block_candidates=7,
        )
        assert_batches_identical(small, None if len(full) == 0 else {
            "xs": full.xs, "ys": full.ys, "z": full.z, "u": full.u,
            "v": full.v, "lod": full.lod, "tri_ids": full.tri_ids,
        })

    def test_empty_batch(self):
        got = rasterize_triangles(
            screen_xy=np.empty((0, 3, 2)), inv_w=np.empty((0, 3)),
            uv=np.empty((0, 3, 2)), z_ndc=np.empty((0, 3)),
            width=W, height=H, tex_width=TEXW, tex_height=TEXH,
        )
        assert len(got) == 0
        assert got.fragment_counts(0).shape == (0,)

    def test_fragment_counts(self):
        screen = np.array(
            [[[0, 0], [0, 10], [10, 10]],    # front
             [[0, 0], [10, 10], [0, 10]],    # back face: culled
             [[0, 0], [0, 10], [10, 10]]],   # front again
            dtype=np.float64,
        )
        got = rasterize_triangles(
            screen_xy=screen, inv_w=np.ones((3, 3)),
            uv=np.tile(np.array([[0, 0], [1, 0], [0, 1]], dtype=np.float64), (3, 1, 1)),
            z_ndc=np.zeros((3, 3)),
            width=W, height=H, tex_width=TEXW, tex_height=TEXH,
        )
        counts = got.fragment_counts(3)
        assert counts[1] == 0
        assert counts[0] == counts[2] > 0
        # tri_ids group fragments by triangle in input order.
        assert np.all(np.diff(got.tri_ids) >= 0)


def _frame_equal(a, b, check_image):
    assert np.array_equal(a.trace.refs, b.trace.refs)
    assert np.array_equal(a.trace.weights, b.trace.weights)
    assert a.trace.n_fragments == b.trace.n_fragments
    assert np.array_equal(a.trace.object_offsets, b.trace.object_offsets)
    assert a.culled_instances == b.culled_instances
    assert a.rasterized_triangles == b.rasterized_triangles
    if check_image:
        assert np.array_equal(a.image, b.image)


def render_both(instances, mgr, options, n_frames=2):
    ref = Renderer(instances, mgr, options, use_reference=True)
    bat = Renderer(instances, mgr, options, use_reference=False)
    assert ref.engine == "reference" and bat.engine == "batched"
    cams = [camera() for _ in range(n_frames)]
    return (
        list(ref.iter_frames(cams)),
        list(bat.iter_frames(cams)),
    )


class TestPipelineDifferential:
    @pytest.mark.parametrize("order", [RasterOrder.SCANLINE, RasterOrder.TILED])
    @pytest.mark.parametrize("z_first", [False, True])
    def test_trace_identical(self, order, z_first):
        instances, mgr = simple_scene(two_quads=True)
        opts = RenderOptions(width=32, height=32, order=order,
                             z_before_texture=z_first,
                             filter_mode=FilterMode.TRILINEAR)
        for a, b in zip(*render_both(instances, mgr, opts)):
            _frame_equal(a, b, check_image=False)

    def test_shaded_image_identical(self):
        instances, mgr = simple_scene(with_images=True, two_quads=True)
        opts = RenderOptions(width=32, height=32, shade=True,
                             filter_mode=FilterMode.BILINEAR)
        for a, b in zip(*render_both(instances, mgr, opts)):
            _frame_equal(a, b, check_image=True)


class TestWorkloadDifferential:
    """City + Village + terrain: real scenes with clipping and multi-texture."""

    @pytest.mark.parametrize("workload", ["city", "village", "terrain"])
    @pytest.mark.parametrize("order", [RasterOrder.SCANLINE, RasterOrder.TILED])
    def test_workload_trace_identical(self, workload, order):
        wl = WORKLOAD_BUILDERS[workload](detail=0.25)
        opts = RenderOptions(width=96, height=72, order=order,
                             filter_mode=FilterMode.BILINEAR)
        cams = wl.cameras(2)
        ref = Renderer(wl.scene.instances, wl.scene.manager, opts,
                       use_reference=True)
        bat = Renderer(wl.scene.instances, wl.scene.manager, opts)
        for a, b in zip(ref.iter_frames(cams), bat.iter_frames(cams)):
            _frame_equal(a, b, check_image=False)
