"""Tests for framebuffer and depth buffer."""

import numpy as np
import pytest

from repro.raster.framebuffer import Framebuffer
from repro.raster.zbuffer import DepthBuffer


class TestFramebuffer:
    def test_clear_color(self):
        fb = Framebuffer(4, 3, clear_color=(1, 2, 3))
        assert np.all(fb.color == [1, 2, 3])

    def test_write_pixels(self):
        fb = Framebuffer(4, 4)
        fb.write_pixels(np.array([1]), np.array([2]), np.array([[9.0, 8.0, 7.0]]))
        assert fb.color[1, 2].tolist() == [9.0, 8.0, 7.0]

    def test_as_uint8_clips(self):
        fb = Framebuffer(2, 2)
        fb.color[0, 0] = [300.0, -5.0, 127.4]
        out = fb.as_uint8()
        assert out[0, 0].tolist() == [255, 0, 127]

    def test_write_ppm(self, tmp_path):
        fb = Framebuffer(3, 2, clear_color=(10, 20, 30))
        path = tmp_path / "img.ppm"
        fb.write_ppm(path)
        data = path.read_bytes()
        assert data.startswith(b"P6\n3 2\n255\n")
        assert len(data) == len(b"P6\n3 2\n255\n") + 3 * 2 * 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Framebuffer(0, 4)


class TestDepthBuffer:
    def test_first_write_passes(self):
        z = DepthBuffer(4, 4)
        passed = z.test_and_update(np.array([0]), np.array([0]), np.array([0.5]))
        assert passed.tolist() == [True]

    def test_farther_fragment_fails(self):
        z = DepthBuffer(4, 4)
        z.test_and_update(np.array([0]), np.array([0]), np.array([0.5]))
        passed = z.test_and_update(np.array([0]), np.array([0]), np.array([0.7]))
        assert passed.tolist() == [False]

    def test_closer_fragment_passes_and_updates(self):
        z = DepthBuffer(4, 4)
        z.test_and_update(np.array([0]), np.array([0]), np.array([0.5]))
        passed = z.test_and_update(np.array([0]), np.array([0]), np.array([0.2]))
        assert passed.tolist() == [True]
        assert z.depth[0, 0] == 0.2

    def test_equal_depth_fails(self):
        z = DepthBuffer(4, 4)
        z.test_and_update(np.array([0]), np.array([0]), np.array([0.5]))
        passed = z.test_and_update(np.array([0]), np.array([0]), np.array([0.5]))
        assert passed.tolist() == [False]

    def test_clear(self):
        z = DepthBuffer(2, 2)
        z.test_and_update(np.array([0]), np.array([0]), np.array([0.5]))
        z.clear()
        assert np.all(np.isinf(z.depth))

    def test_vectorized_mixed_batch(self):
        z = DepthBuffer(4, 1)
        z.test_and_update(np.zeros(4, dtype=int), np.arange(4), np.full(4, 0.5))
        zs = np.array([0.1, 0.9, 0.3, 0.6])
        passed = z.test_and_update(np.zeros(4, dtype=int), np.arange(4), zs)
        assert passed.tolist() == [True, False, True, False]
