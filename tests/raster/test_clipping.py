"""Tests for near-plane clipping."""

import numpy as np
import pytest

from repro.raster.clipping import clip_triangle_near, clip_triangle_plane


def tri(positions, uvs=None):
    pos = np.array(positions, dtype=np.float64)
    uv = np.array(uvs if uvs is not None else [[0, 0], [1, 0], [0, 1]],
                  dtype=np.float64)
    return pos, uv


class TestClipPlane:
    def test_all_inside_passthrough(self):
        pos, uv = tri([[0, 0, 0, 1], [1, 0, 0, 1], [0, 1, 0, 1]])
        out = clip_triangle_plane(pos, uv, np.array([1.0, 1.0, 1.0]))
        assert len(out) == 1
        assert np.array_equal(out[0][0], pos)

    def test_all_outside_dropped(self):
        pos, uv = tri([[0, 0, 0, 1], [1, 0, 0, 1], [0, 1, 0, 1]])
        assert clip_triangle_plane(pos, uv, np.array([-1.0, -1.0, -2.0])) == []

    def test_one_inside_gives_one_triangle(self):
        pos, uv = tri([[0, 0, 0, 1], [1, 0, 0, 1], [0, 1, 0, 1]])
        out = clip_triangle_plane(pos, uv, np.array([1.0, -1.0, -1.0]))
        assert len(out) == 1

    def test_two_inside_gives_two_triangles(self):
        pos, uv = tri([[0, 0, 0, 1], [1, 0, 0, 1], [0, 1, 0, 1]])
        out = clip_triangle_plane(pos, uv, np.array([1.0, 1.0, -1.0]))
        assert len(out) == 2

    def test_intersection_interpolates_linearly(self):
        pos, uv = tri(
            [[0, 0, 0, 1], [2, 0, 0, 1], [0, 2, 0, 1]],
            uvs=[[0, 0], [1, 0], [0, 1]],
        )
        # Plane crosses the 0->1 edge exactly halfway.
        out = clip_triangle_plane(pos, uv, np.array([1.0, -1.0, 1.0]))
        verts = np.vstack([t[0] for t in out])
        uvs = np.vstack([t[1] for t in out])
        # The crossing vertex on edge 0->1 is at x=1, u=0.5.
        has_midpoint = np.any(
            np.isclose(verts[:, 0], 1.0) & np.isclose(uvs[:, 0], 0.5)
        )
        assert has_midpoint


class TestClipNear:
    def test_behind_camera_clipped(self):
        # One vertex behind the near plane (z < -w).
        pos, uv = tri([[0, 0, -2, 1], [1, 0, 0, 1], [0, 1, 0, 1]])
        out = clip_triangle_near(pos, uv)
        assert len(out) == 2
        for cpos, _ in out:
            assert np.all(cpos[:, 2] + cpos[:, 3] >= -1e-6)

    def test_fully_visible_untouched(self):
        pos, uv = tri([[0, 0, 0, 1], [1, 0, 0.5, 1], [0, 1, 0, 2]])
        out = clip_triangle_near(pos, uv)
        assert len(out) == 1

    def test_fully_behind_dropped(self):
        pos, uv = tri([[0, 0, -3, 1], [1, 0, -4, 1], [0, 1, -5, 1]])
        assert clip_triangle_near(pos, uv) == []

    def test_clipped_vertices_have_positive_w(self):
        pos, uv = tri([[0, 0, -5, 0.5], [1, 0, 1, 2], [0, 1, 1, 2]])
        for cpos, _ in clip_triangle_near(pos, uv):
            # At the near plane w = -z > 0, so all clipped w must be positive.
            assert np.all(cpos[:, 3] > 0)
