"""Property: the visible-page set is invariant under tenant interleaving.

The VT feedback pass computes the set of visible pages per frame. Merging
tenant streams only reorders (and retags) accesses — it must never change
which pages each tenant touches, for any schedule, seed, or chunk size.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import Scale
from repro.experiments.traces import get_trace
from repro.raster.feedback import page_requests
from repro.tenancy import SCHEDULES, merge_traces
from repro.tenancy.address import tag_refs
from repro.texture.sampler import FilterMode

MICRO = Scale(width=64, height=48, frames=2, detail=0.2, name="micro")

PAGE_TEXELS = 64


def _pages(refs):
    return set(page_requests(refs, PAGE_TEXELS).tolist())


@settings(max_examples=25)
@given(
    schedule=st.sampled_from(SCHEDULES),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    chunk=st.integers(min_value=1, max_value=2048),
)
def test_page_set_invariant_under_interleaving(schedule, seed, chunk):
    traces = [
        get_trace("village", MICRO, FilterMode.POINT),
        get_trace("city", MICRO, FilterMode.POINT),
    ]
    merged, bases = merge_traces(
        traces,
        schedule=schedule,
        weights=[2.0, 1.0] if schedule != "rr" else None,
        seed=seed,
        chunk_refs=chunk,
    )
    for f in range(merged.meta.n_frames):
        per_tenant = set()
        for t, trace in enumerate(traces):
            per_tenant |= _pages(tag_refs(trace.frames[f].refs, bases[t]))
        assert _pages(merged.frames[f].refs) == per_tenant
