"""Byte-identity tests for supervised parallel frame rendering.

The whole contract of :mod:`repro.raster.parallel` is that sharding the
camera path across worker processes changes wall-clock time and *nothing
else*: the merged ``.stream`` directory — chunk files, index arrays,
manifest CRCs — is byte-for-byte the serial render, for every workload,
and even when seeded chaos SIGKILLs every first shard attempt.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments.config import Scale
from repro.experiments.traces import render_trace_stream, resolve_render_jobs
from repro.errors import ConfigError
from repro.raster.parallel import plan_shards
from repro.reliability.chaos import ChaosPolicy
from repro.reliability.heartbeat import HeartbeatJournal
from repro.reliability.supervisor import SupervisorConfig
from repro.reliability.transfer import TransferPolicy
from repro.texture.sampler import FilterMode

MICRO = Scale(width=64, height=48, frames=5, detail=0.2, name="micro")

#: Short backoff so chaos-kill retries run in test time.
FAST = TransferPolicy(max_retries=2, backoff_base_us=5_000.0)


def dir_bytes(path) -> dict[str, bytes]:
    return {
        str(f.relative_to(path)): f.read_bytes()
        for f in sorted(Path(path).rglob("*"))
        if f.is_file()
    }


def dir_digest(path) -> dict[str, str]:
    return {
        name: hashlib.sha256(data).hexdigest()
        for name, data in dir_bytes(path).items()
    }


class TestPlanShards:
    def test_covers_all_frames_contiguously(self):
        for n_frames in (1, 2, 5, 17, 100):
            for jobs in (1, 2, 4, 7):
                shards = plan_shards(n_frames, jobs)
                assert shards[0].lo == 0
                assert shards[-1].hi == n_frames
                for a, b in zip(shards, shards[1:]):
                    assert a.hi == b.lo  # contiguous, ordered
                assert all(s.n_frames > 0 for s in shards)

    def test_granularity_targets_two_per_worker(self):
        assert len(plan_shards(100, 4)) == 8
        assert len(plan_shards(3, 4)) == 3  # never more shards than frames


class TestByteIdentity:
    @pytest.mark.parametrize("workload", ["city", "village", "terrain"])
    def test_parallel_stream_equals_serial(self, workload, tmp_path):
        serial = tmp_path / "serial.stream"
        parallel = tmp_path / "parallel.stream"
        render_trace_stream(workload, MICRO, FilterMode.POINT, serial, workers=1)
        render_trace_stream(workload, MICRO, FilterMode.POINT, parallel, workers=3)
        assert dir_bytes(serial) == dir_bytes(parallel)
        # The manifest CRC table (what verify() trusts) is equal in
        # particular — a reader cannot tell which render produced which.
        ms = json.loads((serial / "manifest.json").read_text())
        mp = json.loads((parallel / "manifest.json").read_text())
        assert ms["checksums"] == mp["checksums"]

    def test_chaos_first_attempt_kills_still_byte_identical(self, tmp_path):
        serial = tmp_path / "serial.stream"
        chaotic = tmp_path / "chaos.stream"
        render_trace_stream("city", MICRO, FilterMode.POINT, serial, workers=1)
        hb_path = tmp_path / "hb.jsonl"
        render_trace_stream(
            "city",
            MICRO,
            FilterMode.POINT,
            chaotic,
            workers=3,
            supervisor=SupervisorConfig(
                retry=FAST,
                heartbeat_path=hb_path,
                chaos=ChaosPolicy(seed=11, kill_rate=1.0, max_attempt=1),
            ),
        )
        assert dir_bytes(serial) == dir_bytes(chaotic)
        hb = HeartbeatJournal(hb_path)
        # Every shard's first attempt was SIGKILLed and healed by requeue.
        assert len(hb.events("crash")) >= len(plan_shards(MICRO.frames, 3))
        assert len(hb.events("requeue")) >= len(plan_shards(MICRO.frames, 3))

    def test_no_shard_litter_left_behind(self, tmp_path):
        out = tmp_path / "out.stream"
        render_trace_stream("city", MICRO, FilterMode.POINT, out, workers=3)
        left = [p.name for p in tmp_path.iterdir() if p != out]
        assert left == []  # shard scratch root cleaned up


class TestResolveRenderJobs:
    def test_repro_jobs_takes_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv("REPRO_RENDER_WORKERS", "2")
        assert resolve_render_jobs() == 4

    def test_legacy_fallback_stays_lenient(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setenv("REPRO_RENDER_WORKERS", "junk")
        assert resolve_render_jobs() == 1
        monkeypatch.setenv("REPRO_RENDER_WORKERS", "3")
        assert resolve_render_jobs() == 3

    def test_repro_jobs_is_strictly_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "junk")
        with pytest.raises(ConfigError):
            resolve_render_jobs()
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ConfigError):
            resolve_render_jobs()
