"""Integration tests for the rendering/tracing pipeline."""

import numpy as np
import pytest

from repro.geometry.camera import Camera
from repro.geometry.mesh import MeshInstance
from repro.geometry.primitives import make_quad
from repro.geometry.transforms import translation
from repro.raster.pipeline import RenderOptions, Renderer
from repro.raster.rasterizer import RasterOrder
from repro.texture.manager import TextureManager
from repro.texture.procedural import checker_texture
from repro.texture.sampler import FilterMode
from repro.texture.texture import Texture
from repro.texture.tiling import unpack_tile_refs


def simple_scene(with_images=False, two_quads=False):
    """A quad (or two, stacked in depth) facing the camera at the origin."""
    mgr = TextureManager()
    img = checker_texture(64) if with_images else None
    tid = mgr.load(Texture("checker", 64, 64, image=img))
    instances = [
        MeshInstance(make_quad(8.0, 8.0), translation(0, 0, 0), tid, name="front")
    ]
    if two_quads:
        img2 = checker_texture(64) if with_images else None
        tid2 = mgr.load(Texture("back", 64, 64, image=img2))
        instances.append(
            MeshInstance(
                make_quad(8.0, 8.0), translation(0, 0, -3.0), tid2, name="back"
            )
        )
    return instances, mgr


def camera():
    return Camera(eye=np.array([0.0, 0.0, 6.0]), target=np.zeros(3), near=0.5)


class TestBasicRender:
    def test_quad_produces_fragments(self):
        instances, mgr = simple_scene()
        r = Renderer(instances, mgr, RenderOptions(width=64, height=64,
                                                   filter_mode=FilterMode.POINT))
        out = r.render_frame(camera())
        assert out.trace.n_fragments > 500  # quad fills most of the view
        assert out.rasterized_triangles == 2

    def test_refs_are_bound_texture(self):
        instances, mgr = simple_scene()
        r = Renderer(instances, mgr, RenderOptions(width=32, height=32,
                                                   filter_mode=FilterMode.POINT))
        out = r.render_frame(camera())
        tids = np.unique(unpack_tile_refs(out.trace.refs).tid)
        assert tids.tolist() == [0]

    def test_texel_reads_match_filter(self):
        instances, mgr = simple_scene()
        for mode, per_frag in ((FilterMode.POINT, 1), (FilterMode.BILINEAR, 4),
                               (FilterMode.TRILINEAR, 8)):
            r = Renderer(instances, mgr, RenderOptions(width=32, height=32,
                                                       filter_mode=mode))
            out = r.render_frame(camera())
            assert out.trace.texel_reads == out.trace.n_fragments * per_frag

    def test_collapsed_stream_shorter_than_reads(self):
        instances, mgr = simple_scene()
        r = Renderer(instances, mgr, RenderOptions(width=64, height=64,
                                                   filter_mode=FilterMode.BILINEAR))
        out = r.render_frame(camera())
        assert len(out.trace.refs) < out.trace.texel_reads

    def test_dangling_texture_binding_raises(self):
        instances, mgr = simple_scene()
        instances[0].texture_id = 99
        with pytest.raises(IndexError):
            Renderer(instances, mgr)


class TestCulling:
    def test_instance_behind_camera_culled(self):
        instances, mgr = simple_scene()
        instances[0].model = translation(0, 0, 100)  # behind the camera
        r = Renderer(instances, mgr, RenderOptions(width=32, height=32))
        out = r.render_frame(camera())
        assert out.culled_instances == 1
        assert out.trace.n_fragments == 0

    def test_cull_disabled_still_correct(self):
        instances, mgr = simple_scene()
        instances[0].model = translation(0, 0, 100)
        r = Renderer(instances, mgr, RenderOptions(width=32, height=32, cull=False))
        out = r.render_frame(camera())
        # Pixel-level clipping still drops it: no fragments either way.
        assert out.trace.n_fragments == 0


class TestZBeforeTexture:
    def test_occluded_fragments_not_traced(self):
        instances, mgr = simple_scene(two_quads=True)
        base = Renderer(instances, mgr,
                        RenderOptions(width=32, height=32,
                                      filter_mode=FilterMode.POINT))
        zfirst = Renderer(instances, mgr,
                          RenderOptions(width=32, height=32,
                                        filter_mode=FilterMode.POINT,
                                        z_before_texture=True))
        cam = camera()
        out_base = base.render_frame(cam)
        out_z = zfirst.render_frame(cam)
        # The back quad projects entirely behind the front one, so z-first
        # leaves exactly the front quad's fragments.
        front_only = Renderer(
            instances[:1], mgr,
            RenderOptions(width=32, height=32, filter_mode=FilterMode.POINT),
        ).render_frame(cam)
        # (Up to a handful of shared-diagonal duplicates, which the z test
        # additionally filters in z-first mode.)
        assert (
            0
            <= front_only.trace.n_fragments - out_z.trace.n_fragments
            <= 8
        )
        assert out_base.trace.n_fragments > out_z.trace.n_fragments
        # The occluded back texture never appears in the z-first trace.
        tids = np.unique(unpack_tile_refs(out_z.trace.refs).tid)
        assert 1 not in tids.tolist()


class TestShading:
    def test_image_produced(self):
        instances, mgr = simple_scene(with_images=True)
        r = Renderer(instances, mgr,
                     RenderOptions(width=32, height=32, shade=True,
                                   filter_mode=FilterMode.BILINEAR))
        out = r.render_frame(camera())
        assert out.image is not None
        assert out.image.shape == (32, 32, 3)
        # The checker must produce both dark and light pixels on screen.
        assert out.image.max() > 150
        assert out.image.min() < 80

    def test_occlusion_resolved_in_image(self):
        instances, mgr = simple_scene(with_images=True, two_quads=True)
        # Make the back texture solid white to detect bleed-through.
        mgr.textures[1].image[:] = 255
        mgr.textures[1]._pyramid = None
        r = Renderer(instances, mgr,
                     RenderOptions(width=32, height=32, shade=True,
                                   filter_mode=FilterMode.POINT))
        out = r.render_frame(camera())
        # Center pixel shows the front checker, not the white back quad.
        center = out.image[16, 16]
        assert not np.all(center == 255)

    def test_iter_frames_yields_frames(self):
        instances, mgr = simple_scene()
        r = Renderer(instances, mgr, RenderOptions(width=16, height=16))
        outs = list(r.iter_frames([camera(), camera()]))
        assert len(outs) == 2

    def test_render_animation_deprecated_shim(self):
        instances, mgr = simple_scene()
        r = Renderer(instances, mgr, RenderOptions(width=16, height=16))
        with pytest.warns(DeprecationWarning):
            outs = r.render_animation([camera(), camera()])
        assert len(outs) == 2
        expected = list(r.iter_frames([camera(), camera()]))
        for a, b in zip(outs, expected):
            assert np.array_equal(a.trace.refs, b.trace.refs)

    def test_render_animation_is_lazy_and_memory_bounded(self):
        """The shim must forward through iter_frames without materializing.

        Nothing renders until the sequence is consumed, partial iteration
        renders only the consumed prefix, and a full pass retains no
        frames (each yielded FrameOutput is garbage the moment the loop
        advances) — the memory-bounded regression for the old
        list-returning shim.
        """
        import gc
        import weakref

        instances, mgr = simple_scene()
        r = Renderer(instances, mgr, RenderOptions(width=16, height=16))
        calls = []
        real_render = r.render_frame
        r.render_frame = lambda cam: (calls.append(1), real_render(cam))[1]

        with pytest.warns(DeprecationWarning):
            outs = r.render_animation([camera() for _ in range(8)])
        assert len(outs) == 8
        assert calls == []  # constructing the sequence renders nothing

        it = iter(outs)
        first = next(it)
        assert len(calls) == 1  # partial iteration = partial rendering

        # A consumed frame is not retained anywhere by the sequence.
        ref = weakref.ref(first)
        del first
        gc.collect()
        assert ref() is None

        assert sum(1 for _ in outs) == 8  # fresh full pass still works
        assert len(calls) == 1 + 8

        # Indexing renders exactly the requested frame.
        outs[3]
        assert len(calls) == 1 + 8 + 1


class TestTiledOrder:
    def test_tiled_and_scanline_same_fragments(self):
        instances, mgr = simple_scene()
        scan = Renderer(instances, mgr,
                        RenderOptions(width=32, height=32,
                                      filter_mode=FilterMode.POINT))
        tiled = Renderer(instances, mgr,
                         RenderOptions(width=32, height=32,
                                       filter_mode=FilterMode.POINT,
                                       order=RasterOrder.TILED))
        cam = camera()
        a = scan.render_frame(cam).trace
        b = tiled.render_frame(cam).trace
        assert a.n_fragments == b.n_fragments
        # Same set of tiles, possibly different order.
        assert np.array_equal(np.unique(a.refs), np.unique(b.refs))
