"""Tests for the triangle rasterizer: coverage, attributes, LOD, ordering."""

import numpy as np
import pytest

from repro.raster.rasterizer import RasterOrder, rasterize_triangle


def raster(screen, inv_w=None, uv=None, z=None, wh=(32, 32), tex=(64, 64), **kw):
    screen = np.array(screen, dtype=np.float64)
    return rasterize_triangle(
        screen_xy=screen,
        inv_w=np.array(inv_w if inv_w is not None else [1.0, 1.0, 1.0]),
        uv=np.array(uv if uv is not None else [[0, 0], [1, 0], [0, 1]],
                    dtype=np.float64),
        z_ndc=np.array(z if z is not None else [0.0, 0.0, 0.0]),
        width=wh[0],
        height=wh[1],
        tex_width=tex[0],
        tex_height=tex[1],
        **kw,
    )


# Front faces are clockwise in pixel space (y down); this triangle covers
# the lower-left half of a 10x10 box (pixels with y >= x).
FRONT = [[0.0, 0.0], [0.0, 10.0], [10.0, 10.0]]


class TestCoverage:
    def test_front_face_rasterizes(self):
        frags = raster(FRONT)
        assert frags is not None
        assert len(frags) > 0

    def test_back_face_culled(self):
        frags = raster([FRONT[0], FRONT[2], FRONT[1]])
        assert frags is None

    def test_double_sided_rasterizes_back_face(self):
        frags = raster([FRONT[0], FRONT[2], FRONT[1]], double_sided=True)
        assert frags is not None
        assert len(frags) > 0

    def test_degenerate_skipped(self):
        assert raster([[0, 0], [5, 5], [10, 10]]) is None

    def test_offscreen_skipped(self):
        assert raster([[100, 100], [100, 110], [110, 110]], wh=(32, 32)) is None

    def test_clamps_to_viewport(self):
        frags = raster([[-10.0, -10.0], [-10.0, 50.0], [50.0, 50.0]], wh=(8, 8))
        assert frags.xs.min() >= 0
        assert frags.xs.max() < 8
        assert frags.ys.min() >= 0
        assert frags.ys.max() < 8

    def test_half_box_coverage_count(self):
        # The lower-left triangle of a 10x10 box covers ~half its pixels.
        frags = raster(FRONT)
        assert 40 <= len(frags) <= 60

    def test_pixel_centers_inside(self):
        frags = raster(FRONT)
        # Every fragment center must satisfy y >= x (the diagonal) within
        # half-pixel tolerance.
        assert np.all(frags.ys + 0.5 >= frags.xs + 0.5 - 1e-9)

    def test_sub_pixel_triangle_may_miss_all_centers(self):
        frags = raster([[0.6, 0.6], [0.6, 0.9], [0.9, 0.9]])
        assert frags is None


class TestAttributes:
    def test_affine_uv_at_vertices(self):
        frags = raster(FRONT, uv=[[0, 0], [0, 1], [1, 1]])
        # Fragment nearest vertex 0 (pixel 0,0 center at 0.5,0.5).
        i = np.argmin(frags.xs**2 + frags.ys**2)
        assert frags.u[i] == pytest.approx(0.05, abs=0.03)
        assert frags.v[i] == pytest.approx(0.05, abs=0.03)

    def test_affine_z_interpolation(self):
        frags = raster(FRONT, z=[0.0, 1.0, 1.0])
        i = np.argmin(np.abs(frags.xs - 0) + np.abs(frags.ys - 9))
        assert frags.z[i] == pytest.approx(0.95, abs=0.1)

    def test_perspective_correct_uv(self):
        # Vertex 1 is twice as far (w=2 -> inv_w=0.5). With uv [0..1] along
        # the edge, the texture midpoint u=0.5 appears at the screen point
        # where 1/w interpolates to 0.75 of the near value... verify against
        # the closed form u(s) = s*inv_w1 / (s*inv_w1 + (1-s)*inv_w0) for
        # screen parameter s along the 0->1 edge.
        frags = raster(
            [[0.0, 0.0], [0.0, 16.0], [16.0, 16.0]],
            inv_w=[1.0, 1.0, 0.5],
            uv=[[0, 0], [0, 0], [1, 0]],
        )
        # Pick fragments near the diagonal edge (x == y) where interpolation
        # runs from vertex 0 to vertex 1.
        on_edge = frags.xs == frags.ys
        s = (frags.xs[on_edge] + 0.5) / 16.0
        expected = (s * 0.5) / (s * 0.5 + (1 - s) * 1.0)
        assert np.allclose(frags.u[on_edge], expected, atol=0.05)

    def test_uniform_w_reduces_to_affine(self):
        a = raster(FRONT, inv_w=[2.0, 2.0, 2.0], uv=[[0, 0], [0, 1], [1, 1]])
        b = raster(FRONT, inv_w=[1.0, 1.0, 1.0], uv=[[0, 0], [0, 1], [1, 1]])
        assert np.allclose(a.u, b.u)
        assert np.allclose(a.v, b.v)


class TestLOD:
    def _lod_for_scale(self, pixels, uv_max):
        """Rasterize a triangle whose texture repeats uv_max over `pixels`."""
        frags = raster(
            [[0.0, 0.0], [0.0, float(pixels)], [float(pixels), float(pixels)]],
            uv=[[0, 0], [0, uv_max], [uv_max, uv_max]],
            wh=(64, 64),
            tex=(64, 64),
        )
        return float(np.median(frags.lod))

    def test_one_to_one_mapping_has_lod_zero(self):
        # 64 texels over 64 pixels: 1:1 -> lod ~ 0.
        assert self._lod_for_scale(64, 1.0) == pytest.approx(0.0, abs=0.1)

    def test_minification_raises_lod(self):
        # 64 texels over 16 pixels: 4 texels/pixel -> lod ~ 2.
        assert self._lod_for_scale(16, 1.0) == pytest.approx(2.0, abs=0.1)

    def test_magnification_lowers_lod(self):
        # 64 texels over 128 pixels -> lod ~ -1.
        frags = raster(
            [[0.0, 0.0], [0.0, 128.0], [128.0, 128.0]],
            uv=[[0, 0], [0, 1], [1, 1]],
            wh=(128, 128),
        )
        assert float(np.median(frags.lod)) == pytest.approx(-1.0, abs=0.1)

    def test_repeat_uv_raises_lod(self):
        # 4x UV repeat quadruples texel density: lod increases by 2.
        base = self._lod_for_scale(64, 1.0)
        repeated = self._lod_for_scale(64, 4.0)
        assert repeated - base == pytest.approx(2.0, abs=0.1)


class TestOrdering:
    def test_scanline_order_row_major(self):
        frags = raster(FRONT)
        order = np.lexsort((frags.xs, frags.ys))
        assert np.array_equal(order, np.arange(len(frags)))

    def test_tiled_order_groups_tiles(self):
        frags = raster(
            [[0.0, 0.0], [0.0, 32.0], [32.0, 32.0]], order=RasterOrder.TILED
        )
        tile_keys = (frags.ys // 8) * 100 + (frags.xs // 8)
        # Tile keys must be non-decreasing: all of a tile's fragments are
        # emitted before the next tile starts.
        assert np.all(np.diff(tile_keys) >= 0) or len(
            np.unique(tile_keys)
        ) == len(set(tile_keys.tolist()))
        # Stronger check: each tile appears as one contiguous run.
        changes = np.count_nonzero(np.diff(tile_keys))
        assert changes == len(np.unique(tile_keys)) - 1

    def test_tiled_order_pinned(self):
        # Regression for the lexsort-key fix: the 2-key sort (tile row,
        # tile col — stable over the scanline input) must reproduce the
        # old 4-key sort (xs, ys, xs//8, ys//8) exactly: tiles in (tile
        # row, tile col) order, scanline order within each tile.
        for verts in (
            FRONT,
            [[0.0, 0.0], [0.0, 32.0], [32.0, 32.0]],
            [[3.0, 1.0], [27.5, 30.0], [30.0, 4.5]],
        ):
            scan = raster(verts)
            tiled = raster(verts, order=RasterOrder.TILED)
            old_key = np.lexsort(
                (scan.xs, scan.ys, scan.xs // 8, scan.ys // 8)
            )
            assert np.array_equal(tiled.xs, scan.xs[old_key])
            assert np.array_equal(tiled.ys, scan.ys[old_key])
            assert np.array_equal(tiled.u, scan.u[old_key])
            assert np.array_equal(tiled.v, scan.v[old_key])
            assert np.array_equal(tiled.z, scan.z[old_key])
            assert np.array_equal(tiled.lod, scan.lod[old_key])
