"""Property tests for the rasterizer's geometric invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.raster.rasterizer import rasterize_triangle

coord = st.floats(-20.0, 52.0)
triangle = st.tuples(coord, coord, coord, coord, coord, coord)


def raster(verts, inv_w=(1.0, 1.0, 1.0), uv=None, wh=(32, 32), **kw):
    p = np.array(verts, dtype=np.float64).reshape(3, 2)
    return rasterize_triangle(
        screen_xy=p,
        inv_w=np.array(inv_w, dtype=np.float64),
        uv=np.array(uv if uv is not None else [[0, 0], [1, 0], [0, 1]],
                    dtype=np.float64),
        z_ndc=np.zeros(3),
        width=wh[0],
        height=wh[1],
        tex_width=64,
        tex_height=64,
        **kw,
    )


class TestGeometricInvariants:
    @given(triangle)
    @settings(max_examples=200, deadline=None)
    def test_property_fragments_inside_viewport(self, verts):
        frags = raster(verts, double_sided=True)
        if frags is None:
            return
        assert frags.xs.min() >= 0 and frags.xs.max() < 32
        assert frags.ys.min() >= 0 and frags.ys.max() < 32

    @given(triangle)
    @settings(max_examples=200, deadline=None)
    def test_property_no_duplicate_pixels(self, verts):
        frags = raster(verts, double_sided=True)
        if frags is None:
            return
        keys = frags.ys.astype(np.int64) * 1000 + frags.xs
        assert len(np.unique(keys)) == len(keys)

    @given(triangle)
    @settings(max_examples=200, deadline=None)
    def test_property_coverage_bounded_by_area(self, verts):
        frags = raster(verts, double_sided=True)
        if frags is None:
            return
        p = np.array(verts).reshape(3, 2)
        area = abs(
            (p[1, 0] - p[0, 0]) * (p[2, 1] - p[0, 1])
            - (p[2, 0] - p[0, 0]) * (p[1, 1] - p[0, 1])
        ) / 2.0
        # Pixel-center sampling can cover at most area + perimeter-ish
        # slack; use a generous geometric bound.
        perimeter = sum(
            np.linalg.norm(p[(i + 1) % 3] - p[i]) for i in range(3)
        )
        assert len(frags) <= area + perimeter + 4

    @given(
        st.tuples(*[st.floats(10.0, 40.0)] * 6),
        st.integers(-8, 8),
        st.integers(-8, 8),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_integer_translation_equivariance(self, verts, dx, dy):
        """A triangle fully in view translated by whole pixels rasterizes
        to the exact translate of its pixel set."""
        p = np.array(verts).reshape(3, 2)
        # The invariant only holds when the translation itself is exact:
        # adding an integer to a full-mantissa double can cross a binade
        # and round, nudging an edge by an ULP across a pixel center.
        assume(np.all((p + np.array([dx, dy])) - np.array([dx, dy]) == p))
        a = raster(p, wh=(64, 64), double_sided=True)
        b = raster(p + np.array([dx, dy]), wh=(64, 64), double_sided=True)

        def pixels(frags):
            if frags is None:
                return set()
            return set(zip(frags.xs.tolist(), frags.ys.tolist()))

        assert pixels(b) == {(x + dx, y + dy) for x, y in pixels(a)}

    @given(triangle)
    @settings(max_examples=150, deadline=None)
    def test_property_winding_reversal_same_coverage(self, verts):
        p = np.array(verts).reshape(3, 2)
        area2 = (p[1, 0] - p[0, 0]) * (p[2, 1] - p[0, 1]) - (
            p[2, 0] - p[0, 0]
        ) * (p[1, 1] - p[0, 1])
        # Near-degenerate slivers are rounding-asymmetric under winding
        # reversal; the invariant is only meaningful for real triangles.
        assume(abs(area2) > 1e-6)
        fwd = raster(p, double_sided=True)
        rev = raster(p[::-1], double_sided=True)
        def pixels(f):
            if f is None:
                return set()
            return set(zip(f.xs.tolist(), f.ys.tolist()))
        assert pixels(fwd) == pixels(rev)

    @given(triangle)
    @settings(max_examples=150, deadline=None)
    def test_property_affine_uv_in_hull(self, verts):
        uv = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]
        frags = raster(verts, uv=uv, double_sided=True)
        if frags is None:
            return
        eps = 1e-6
        assert np.all(frags.u >= -eps)
        assert np.all(frags.v >= -eps)
        assert np.all(frags.u + frags.v <= 1.0 + eps)

    @given(triangle, st.floats(0.1, 4.0))
    @settings(max_examples=100, deadline=None)
    def test_property_uniform_w_scale_invariant(self, verts, w):
        """Scaling all 1/w by a constant must not change u, v, or coverage."""
        a = raster(verts, inv_w=(1.0, 1.0, 1.0), double_sided=True)
        b = raster(verts, inv_w=(w, w, w), double_sided=True)
        if a is None:
            assert b is None
            return
        assert np.allclose(a.u, b.u, atol=1e-9)
        assert np.allclose(a.v, b.v, atol=1e-9)
