"""Tests for atomic file persistence."""

import os

import numpy as np
import pytest

from repro.reliability.atomic import (
    atomic_savez_compressed,
    atomic_write,
    atomic_write_text,
)


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write(path, lambda fh: fh.write(b"payload"))
        assert path.read_bytes() == b"payload"

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_no_tmp_files_left_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failure_leaves_destination_untouched(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "original")

        def boom(fh):
            fh.write(b"partial")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            atomic_write(path, boom)
        assert path.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "v1")
        atomic_write_text(path, "v2")
        assert path.read_text() == "v2"


class TestAtomicSavez:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "arrays.npz"
        a = np.arange(10, dtype=np.int64)
        atomic_savez_compressed(path, a=a)
        with np.load(path) as data:
            assert np.array_equal(data["a"], a)

    def test_no_npz_suffix_duplication(self, tmp_path):
        # numpy appends .npz to *paths*; the atomic writer hands it a file
        # object so the final name is exactly what was asked for.
        path = tmp_path / "arrays.npz"
        atomic_savez_compressed(path, a=np.zeros(1))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["arrays.npz"]
