"""Chaos tests for the self-healing sweep supervisor.

Every test injects deterministic faults — worker SIGKILLs, stalls past the
watchdog, corrupted store entries — and asserts the supervisor converges
to output *byte-identical* to a fault-free serial run. Determinism is the
whole point: the same seed kills the same tasks on every run.
"""

import json

import pytest

from repro.errors import CorruptSimCacheWarning, WorkerCrashError
from repro.experiments import simstore
from repro.experiments.config import Scale
from repro.experiments.parallel import (
    SupervisorConfig,
    _WorkerPool,
    _mp_context,
    simulate_many,
)
from repro.experiments.simcache import build_config, clear_simulation_cache
from repro.experiments.traces import get_trace
from repro.reliability.chaos import ChaosPolicy, corrupt_file
from repro.reliability.heartbeat import HeartbeatJournal
from repro.reliability.transfer import TransferPolicy
from repro.texture.sampler import FilterMode

MICRO = Scale(width=64, height=48, frames=2, detail=0.2, name="micro")

#: Short watchdog/backoff so failure paths run in test time.
FAST = TransferPolicy(max_retries=2, backoff_base_us=5_000.0)


@pytest.fixture
def fresh_store(isolated_sim_cache):
    clear_simulation_cache()
    simstore.clear()
    yield isolated_sim_cache
    clear_simulation_cache()
    simstore.clear()


def micro_points():
    trace = get_trace("city", MICRO, FilterMode.POINT)
    return [
        (trace, build_config(l1_bytes=l1, l2_bytes=l2))
        for l1 in (1024, 2048)
        for l2 in (None, 64 * 1024)
    ]


def store_bytes(store_dir):
    return {p.name: p.read_bytes() for p in store_dir.glob("sim_*.npz")}


class TestChaosPolicy:
    def test_decisions_are_deterministic_and_seeded(self):
        policy = ChaosPolicy(seed=1, kill_rate=0.4, stall_rate=0.3)
        fates = [policy.decide(f"task{i}", 0) for i in range(64)]
        assert fates == [policy.decide(f"task{i}", 0) for i in range(64)]
        assert {"kill", "stall", "ok"} == set(fates)  # all outcomes reachable
        other = ChaosPolicy(seed=2, kill_rate=0.4, stall_rate=0.3)
        assert fates != [other.decide(f"task{i}", 0) for i in range(64)]

    def test_attempts_past_budget_always_run_clean(self):
        policy = ChaosPolicy(seed=0, kill_rate=1.0, max_attempt=2)
        assert policy.decide("t", 0) == "kill"
        assert policy.decide("t", 1) == "kill"
        assert policy.decide("t", 2) == "ok"

    def test_env_round_trip(self, monkeypatch):
        policy = ChaosPolicy(seed=7, kill_rate=0.25, stall_rate=0.1, stall_s=3.0)
        monkeypatch.setenv("REPRO_CHAOS", policy.to_env())
        assert ChaosPolicy.from_env() == policy
        monkeypatch.delenv("REPRO_CHAOS")
        assert ChaosPolicy.from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "{not json")
        with pytest.raises(ValueError):
            ChaosPolicy.from_env()

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            ChaosPolicy(kill_rate=1.5)
        with pytest.raises(ValueError):
            ChaosPolicy(kill_rate=0.6, stall_rate=0.6)


class TestSupervisorHealing:
    def test_worker_kills_converge_to_byte_identical_store(
        self, fresh_store, tmp_path, monkeypatch
    ):
        points = micro_points()
        serial = simulate_many(points, jobs=1)
        reference = store_bytes(fresh_store)
        assert len(reference) == len(points)

        simstore.clear()
        hb_path = tmp_path / "hb.jsonl"
        healed = simulate_many(
            points,
            jobs=3,
            supervisor=SupervisorConfig(
                retry=FAST,
                heartbeat_path=hb_path,
                chaos=ChaosPolicy(seed=11, kill_rate=1.0, max_attempt=1),
            ),
        )
        assert all(s.frames == h.frames for s, h in zip(serial, healed))
        assert store_bytes(fresh_store) == reference
        hb = HeartbeatJournal(hb_path)
        assert len(hb.events("crash")) >= len(points)
        assert len(hb.events("requeue")) >= len(points)

    def test_stalled_workers_hit_watchdog_and_recover(self, fresh_store, tmp_path):
        points = micro_points()
        serial = simulate_many(points, jobs=1)
        simstore.clear()
        hb_path = tmp_path / "hb.jsonl"
        healed = simulate_many(
            points,
            jobs=2,
            supervisor=SupervisorConfig(
                task_timeout_s=0.5,
                retry=FAST,
                heartbeat_path=hb_path,
                chaos=ChaosPolicy(
                    seed=3, stall_rate=1.0, stall_s=60.0, max_attempt=1
                ),
            ),
        )
        assert all(s.frames == h.frames for s, h in zip(serial, healed))
        assert len(HeartbeatJournal(hb_path).events("timeout")) >= len(points)

    def test_sweep_degrades_to_serial_after_repeated_failures(
        self, fresh_store, tmp_path
    ):
        points = micro_points()
        serial = simulate_many(points, jobs=1)
        simstore.clear()
        hb_path = tmp_path / "hb.jsonl"
        healed = simulate_many(
            points,
            jobs=3,
            supervisor=SupervisorConfig(
                retry=FAST,
                max_worker_failures=1,
                heartbeat_path=hb_path,
                # Kill every parallel attempt: only degraded-mode serial
                # execution can finish the sweep.
                chaos=ChaosPolicy(seed=5, kill_rate=1.0, max_attempt=99),
            ),
        )
        assert all(s.frames == h.frames for s, h in zip(serial, healed))
        hb = HeartbeatJournal(hb_path)
        assert any(e.get("scope") == "sweep" for e in hb.events("degrade"))
        assert hb.events("serial")

    def test_exhausted_budget_raises_without_serial_fallback(
        self, fresh_store, tmp_path
    ):
        points = micro_points()
        with pytest.raises(WorkerCrashError):
            simulate_many(
                points,
                jobs=2,
                supervisor=SupervisorConfig(
                    retry=TransferPolicy(max_retries=0, backoff_base_us=1_000.0),
                    serial_fallback=False,
                    heartbeat_path=tmp_path / "hb.jsonl",
                    chaos=ChaosPolicy(seed=11, kill_rate=1.0, max_attempt=99),
                ),
            )

    def test_corrupt_store_entry_is_healed_mid_sweep(self, fresh_store):
        points = micro_points()
        serial = simulate_many(points, jobs=1)
        reference = store_bytes(fresh_store)
        victim = sorted(fresh_store.glob("sim_*.npz"))[0]
        corrupt_file(victim, seed=13)
        with pytest.warns(CorruptSimCacheWarning):
            healed = simulate_many(points, jobs=1)
        assert all(s.frames == h.frames for s, h in zip(serial, healed))
        assert store_bytes(fresh_store) == reference

    def test_restarted_sweep_runs_only_missing_remainder(
        self, fresh_store, tmp_path
    ):
        points = micro_points()
        # A "crashed" sweep that completed half the points: those entries
        # are already durable because workers persist before reporting.
        simulate_many(points[:2], jobs=1)
        assert len(store_bytes(fresh_store)) == 2

        hb_path = tmp_path / "hb.jsonl"
        simulate_many(
            points,
            jobs=2,
            supervisor=SupervisorConfig(retry=FAST, heartbeat_path=hb_path),
        )
        dispatched = HeartbeatJournal(hb_path).events("dispatch")
        assert len(dispatched) == len(points) - 2
        assert len(store_bytes(fresh_store)) == len(points)


class TestPoolShutdown:
    def test_keyboard_interrupt_leaves_no_orphans(self):
        trace = get_trace("city", MICRO, FilterMode.POINT)
        pool = _WorkerPool(_mp_context(), [trace], chaos=None)
        with pytest.raises(KeyboardInterrupt):
            with pool:
                workers = [pool.spawn() for _ in range(3)]
                assert all(w.process.is_alive() for w in workers)
                raise KeyboardInterrupt
        assert not pool.workers
        assert all(not w.process.is_alive() for w in workers)


class TestExperimentUnderChaos:
    def test_table5_6_under_chaos_matches_fault_free_serial(
        self, fresh_store, monkeypatch
    ):
        from repro.experiments.exp_table5_6 import run

        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        reference = run(MICRO)
        reference_bytes = store_bytes(fresh_store)

        clear_simulation_cache()
        simstore.clear()
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "60")
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps({"seed": 17, "kill_rate": 0.5, "max_attempt": 1}),
        )
        chaotic = run(MICRO)
        assert chaotic.text == reference.text
        assert chaotic.data == reference.data
        assert store_bytes(fresh_store) == reference_bytes
