"""Tests for the fault model and retry/backoff transfer link."""

import dataclasses

import pytest

from repro.errors import TransferError
from repro.reliability.faults import FaultModel
from repro.reliability.transfer import AgpTransferLink, TransferPolicy
from repro.texture.tiling import L1_BLOCK_BYTES


def run_link(model, policy=None, frames=(500, 300, 700)):
    link = AgpTransferLink(model, policy)
    return [link.transfer_frame(n) for n in frames]


class TestFaultModel:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultModel(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultModel(drop_rate=0.7, corrupt_rate=0.7)

    def test_active(self):
        assert not FaultModel().active
        assert FaultModel(drop_rate=0.1).active
        assert FaultModel(corrupt_rate=0.1).active
        assert FaultModel(spike_rate=0.1).active

    def test_hashable_for_config_keys(self):
        # HierarchyConfig (a frozen dataclass used as a memoization key)
        # embeds the model, so it must hash.
        assert hash(FaultModel(drop_rate=0.1, seed=7)) == hash(
            FaultModel(drop_rate=0.1, seed=7)
        )


class TestDeterminism:
    def test_same_seed_identical_retry_counts(self):
        model = FaultModel(drop_rate=0.05, corrupt_rate=0.05, seed=42)
        a = run_link(model)
        b = run_link(model)
        assert [s.retried_transfers for s in a] == [s.retried_transfers for s in b]
        assert [s.stale_blocks for s in a] == [s.stale_blocks for s in b]
        assert [s.retry_bytes for s in a] == [s.retry_bytes for s in b]

    def test_different_seeds_diverge(self):
        a = run_link(FaultModel(drop_rate=0.2, seed=1), frames=(10_000,))
        b = run_link(FaultModel(drop_rate=0.2, seed=2), frames=(10_000,))
        assert a[0].retried_transfers != b[0].retried_transfers


class TestTransferOutcomes:
    def test_zero_rate_is_free(self):
        stats = run_link(FaultModel(seed=0))[0]
        assert stats.retried_transfers == 0
        assert stats.retry_bytes == 0
        assert stats.stale_blocks == 0
        assert not stats.degraded

    def test_zero_blocks(self):
        link = AgpTransferLink(FaultModel(drop_rate=0.5, seed=0))
        stats = link.transfer_frame(0)
        assert stats.requested_blocks == 0
        assert stats.retried_transfers == 0

    def test_certain_failure_goes_stale(self):
        policy = TransferPolicy(max_retries=2)
        link = AgpTransferLink(FaultModel(drop_rate=1.0, seed=0), policy)
        stats = link.transfer_frame(100)
        # Every block fails the first try and both retries.
        assert stats.retried_transfers == 200
        assert stats.stale_blocks == 100
        assert stats.degraded

    def test_retry_bytes_are_block_sized(self):
        model = FaultModel(drop_rate=0.3, seed=9)
        stats = run_link(model, frames=(1000,))[0]
        assert stats.retry_bytes == stats.retried_transfers * L1_BLOCK_BYTES

    def test_max_retries_zero_never_retries(self):
        link = AgpTransferLink(
            FaultModel(drop_rate=0.5, seed=3), TransferPolicy(max_retries=0)
        )
        stats = link.transfer_frame(1000)
        assert stats.retried_transfers == 0
        assert stats.stale_blocks > 0

    def test_strict_policy_raises(self):
        link = AgpTransferLink(
            FaultModel(drop_rate=1.0, seed=0),
            TransferPolicy(max_retries=1, strict=True),
        )
        with pytest.raises(TransferError):
            link.transfer_frame(10)

    def test_backoff_grows_exponentially(self):
        policy = TransferPolicy(backoff_base_us=10.0, backoff_factor=2.0)
        assert policy.backoff_us(0) == 10.0
        assert policy.backoff_us(3) == 80.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            TransferPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            TransferPolicy(backoff_factor=0.5)

    def test_spikes_counted(self):
        link = AgpTransferLink(FaultModel(spike_rate=1.0, seed=0))
        stats = link.transfer_frame(50)
        assert stats.latency_spikes == 50
        assert stats.retried_transfers == 0


class TestImmutability:
    def test_model_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FaultModel().drop_rate = 0.5

    def test_policy_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TransferPolicy().max_retries = 5
