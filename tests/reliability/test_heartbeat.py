"""Heartbeat journal: append/replay semantics and the size-cap rotation."""

import json

import pytest

from repro.reliability.heartbeat import HeartbeatJournal, default_heartbeat_path


class TestEmitAndReplay:
    def test_events_replay_in_emission_order(self, tmp_path):
        j = HeartbeatJournal(tmp_path / "hb.jsonl")
        j.emit("dispatch", task="a")
        j.emit("complete", task="a")
        j.emit("dispatch", task="b")
        assert [e["event"] for e in j.events()] == [
            "dispatch",
            "complete",
            "dispatch",
        ]
        assert [e["task"] for e in j.events("dispatch")] == ["a", "b"]

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "hb.jsonl"
        j = HeartbeatJournal(path)
        j.emit("dispatch", task="a")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"t": 1, "event": "disp')  # crashed mid-write
        assert [e["event"] for e in j.events()] == ["dispatch"]

    def test_disabled_journal_is_a_noop(self):
        j = HeartbeatJournal(None)
        j.emit("dispatch", task="a")
        assert j.events() == []
        assert j.rotated_paths() == []


class TestRotation:
    def small(self, tmp_path, keep=3):
        # Tiny cap so every emit after the first rotates the live file.
        return HeartbeatJournal(tmp_path / "hb.jsonl", max_bytes=1, keep=keep)

    def test_cap_rotates_live_file_to_archives(self, tmp_path):
        j = self.small(tmp_path)
        j.emit("e", n=0)
        assert j.rotated_paths() == []
        j.emit("e", n=1)
        assert [p.name for p in j.rotated_paths()] == ["hb.jsonl.1"]
        j.emit("e", n=2)
        assert [p.name for p in j.rotated_paths()] == ["hb.jsonl.1", "hb.jsonl.2"]
        # Each archive holds the one line that tripped the cap before it.
        assert json.loads((tmp_path / "hb.jsonl.2").read_text())["n"] == 0
        assert json.loads((tmp_path / "hb.jsonl.1").read_text())["n"] == 1

    def test_keeps_only_newest_n_archives(self, tmp_path):
        j = self.small(tmp_path, keep=2)
        for n in range(5):
            j.emit("e", n=n)
        assert [p.name for p in j.rotated_paths()] == ["hb.jsonl.1", "hb.jsonl.2"]
        # Oldest events (0, 1) fell off the end; footprint stays bounded.
        kept = [e["n"] for e in j.events(include_rotated=True)]
        assert kept == [2, 3, 4]

    def test_include_rotated_reads_in_emission_order(self, tmp_path):
        j = self.small(tmp_path)
        for n in range(4):
            j.emit("e", n=n)
        assert [e["n"] for e in j.events(include_rotated=True)] == [0, 1, 2, 3]
        assert [e["n"] for e in j.events()] == [3]  # live file only

    def test_rotation_disabled_grows_unbounded(self, tmp_path):
        j = HeartbeatJournal(tmp_path / "hb.jsonl", max_bytes=None)
        for n in range(20):
            j.emit("e", n=n)
        assert j.rotated_paths() == []
        assert len(j.events()) == 20

    def test_degenerate_limits_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            HeartbeatJournal(tmp_path / "hb.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            HeartbeatJournal(tmp_path / "hb.jsonl", keep=0)


class TestDefaultPath:
    def test_env_overrides_and_off_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT", "/tmp/custom.jsonl")
        assert str(default_heartbeat_path()) == "/tmp/custom.jsonl"
        monkeypatch.setenv("REPRO_HEARTBEAT", "off")
        assert default_heartbeat_path() is None
        monkeypatch.delenv("REPRO_HEARTBEAT")
        assert default_heartbeat_path().name == "heartbeat.jsonl"
