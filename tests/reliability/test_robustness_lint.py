"""Static robustness lint over ``src/``.

Walks every source module's AST and enforces the error-handling and
durability conventions the reliability layer depends on:

* no bare ``except:`` anywhere — failures must be typed;
* handlers catching ``BaseException``, ``KeyboardInterrupt``, or
  ``SystemExit`` must re-raise (or sit on the explicit allowlist for
  intentional child-process shutdown), so Ctrl-C and interpreter
  shutdown are never swallowed;
* durable artifacts are written through the atomic helpers: ``np.savez``
  and raw file writes are confined to the modules that implement (or
  deliberately bypass, like the chaos corruptor) the atomic layer.
"""

import ast
from pathlib import Path

SRC = Path(__file__).parents[2] / "src" / "repro"

# Handlers that intentionally absorb KeyboardInterrupt/SystemExit:
# (module relative to src/repro, enclosing function). The supervisor's
# pool child treats Ctrl-C as a clean shutdown signal — the parent owns
# the interrupt; the child just exits its task loop.
INTERRUPT_ALLOWLIST = {
    ("reliability/supervisor.py", "_worker_main"),
}

# Modules allowed to call np.savez* directly — only the deterministic
# atomic writer itself.
SAVEZ_ALLOWLIST = {"reliability/atomic.py"}

# Modules allowed to open files for writing outside the atomic helpers:
# the helpers themselves, the chaos corruptor (whose entire point is
# damaging artifacts in place), and leaf exporters of non-durable,
# regenerable outputs (PPM images, CSV exports, staged stream chunks
# that are published via os.replace), and the heartbeat journal (an
# append-only log whose reader tolerates a torn tail by design).
RAW_WRITE_ALLOWLIST = {
    "reliability/atomic.py",
    "reliability/chaos.py",
    "reliability/heartbeat.py",
    "raster/framebuffer.py",
    "experiments/export.py",
    "trace/stream.py",
}

BASE_NAMES = {"BaseException", "KeyboardInterrupt", "SystemExit"}


def iter_modules():
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        yield rel, ast.parse(path.read_text(), filename=rel)


def exception_names(handler):
    node = handler.type
    if node is None:
        return {"<bare>"}
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names = set()
    for n in nodes:
        if isinstance(n, ast.Name):
            names.add(n.id)
        elif isinstance(n, ast.Attribute):
            names.add(n.attr)
    return names


def handler_reraises(handler):
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def enclosing_function(tree, target):
    """Name of the innermost function containing ``target``."""
    result = None

    class Finder(ast.NodeVisitor):
        def __init__(self):
            self.stack = []

        def generic_visit(self, node):
            is_fn = isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            )
            if is_fn:
                self.stack.append(node.name)
            if node is target:
                nonlocal result
                result = self.stack[-1] if self.stack else None
            super().generic_visit(node)
            if is_fn:
                self.stack.pop()

    Finder().visit(tree)
    return result


class TestExceptionHygiene:
    def test_no_bare_except(self):
        offenders = []
        for rel, tree in iter_modules():
            for node in ast.walk(tree):
                if isinstance(node, ast.ExceptHandler) and node.type is None:
                    offenders.append(f"{rel}:{node.lineno}")
        assert not offenders, f"bare except: {offenders}"

    def test_interrupts_never_swallowed(self):
        offenders = []
        for rel, tree in iter_modules():
            for node in ast.walk(tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not exception_names(node) & BASE_NAMES:
                    continue
                if handler_reraises(node):
                    continue
                fn = enclosing_function(tree, node)
                if (rel, fn) in INTERRUPT_ALLOWLIST:
                    continue
                offenders.append(f"{rel}:{node.lineno} (in {fn})")
        assert not offenders, (
            "KeyboardInterrupt/SystemExit/BaseException swallowed "
            f"without re-raise: {offenders}"
        )

    def test_interrupt_allowlist_is_not_stale(self):
        live = set()
        for rel, tree in iter_modules():
            for node in ast.walk(tree):
                if isinstance(node, ast.ExceptHandler) and (
                    exception_names(node) & BASE_NAMES
                ):
                    live.add((rel, enclosing_function(tree, node)))
        stale = INTERRUPT_ALLOWLIST - live
        assert not stale, f"allowlist entries no longer exist: {stale}"


class TestDurableWritesAreAtomic:
    def test_savez_only_in_atomic_module(self):
        offenders = []
        for rel, tree in iter_modules():
            if rel in SAVEZ_ALLOWLIST:
                continue
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr.startswith("savez")
                ):
                    offenders.append(f"{rel}:{node.lineno}")
        assert not offenders, (
            f"np.savez outside the atomic writer: {offenders}"
        )

    def test_raw_writes_only_in_allowlisted_modules(self):
        offenders = []
        for rel, tree in iter_modules():
            if rel in RAW_WRITE_ALLOWLIST:
                continue
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name) and func.id == "open":
                    modes = [
                        a.value
                        for a in node.args[1:2]
                        if isinstance(a, ast.Constant)
                    ] + [
                        kw.value.value
                        for kw in node.keywords
                        if kw.arg == "mode"
                        and isinstance(kw.value, ast.Constant)
                    ]
                    if any(
                        isinstance(m, str) and ("w" in m or "a" in m or "x" in m)
                        for m in modes
                    ):
                        offenders.append(f"{rel}:{node.lineno} open(mode)")
                if isinstance(func, ast.Attribute) and func.attr in (
                    "write_text",
                    "write_bytes",
                ):
                    offenders.append(f"{rel}:{node.lineno} {func.attr}")
        assert not offenders, (
            "raw file writes outside the atomic/exporter allowlist "
            f"(use repro.reliability.atomic helpers): {offenders}"
        )

    def test_raw_write_allowlist_is_not_stale(self):
        missing = {
            rel
            for rel in RAW_WRITE_ALLOWLIST | SAVEZ_ALLOWLIST
            if not (SRC / rel).exists()
        }
        assert not missing, f"allowlisted modules vanished: {missing}"
