"""Tests for the JSON run journal."""

import json

from repro.reliability.runjournal import ExperimentRecord, RunJournal


def make_journal(tmp_path):
    return RunJournal(path=tmp_path / "journal.json")


class TestRunJournal:
    def test_record_and_reload(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record(
            ExperimentRecord("fig3", "ok", scale="small", elapsed_s=1.2)
        )
        journal.record(
            ExperimentRecord(
                "table1",
                "failed",
                scale="small",
                error={"type": "RuntimeError", "message": "boom", "traceback": "tb"},
            )
        )
        loaded = RunJournal.load(journal.path)
        assert loaded.completed_ids() == {"fig3"}
        assert loaded.failed_ids() == {"table1"}
        assert loaded.records["table1"].error["type"] == "RuntimeError"

    def test_completed_ids_scale_filter(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record(ExperimentRecord("fig3", "ok", scale="small"))
        journal.record(ExperimentRecord("fig4", "ok", scale="bench"))
        assert journal.completed_ids("small") == {"fig3"}
        assert journal.completed_ids() == {"fig3", "fig4"}

    def test_rerecord_overwrites(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record(ExperimentRecord("fig3", "failed", scale="small"))
        journal.record(ExperimentRecord("fig3", "ok", scale="small"))
        assert RunJournal.load(journal.path).completed_ids() == {"fig3"}

    def test_missing_file_loads_empty(self, tmp_path):
        journal = RunJournal.load(tmp_path / "nope.json")
        assert journal.records == {}

    def test_damaged_file_loads_empty(self, tmp_path):
        path = tmp_path / "journal.json"
        path.write_text("{ not json")
        assert RunJournal.load(path).records == {}

    def test_journal_is_valid_json_after_each_record(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record(ExperimentRecord("fig3", "ok"))
        raw = json.loads(journal.path.read_text())
        assert raw["version"] == 1
        assert raw["records"][0]["experiment_id"] == "fig3"

    def test_unknown_fields_tolerated(self, tmp_path):
        path = tmp_path / "journal.json"
        path.write_text(
            json.dumps(
                {
                    "version": 99,
                    "records": [
                        {"experiment_id": "fig3", "status": "ok", "scale": ""},
                        {"experiment_id": "x", "status": "ok", "who": "dis"},
                    ],
                }
            )
        )
        loaded = RunJournal.load(path)
        # The future-layout row is skipped, the compatible one kept.
        assert loaded.completed_ids() == {"fig3"}
