"""Whole-sweep serial degradation under ``$REPRO_CHAOS``.

When chaos (injected through the environment, the way CI turns it on
under an unmodified CLI) kills every parallel attempt and the worker
replacement budget runs out, the supervisor must degrade the remaining
batch to serial in-process execution, finish it correctly, and record
the degradation in the heartbeat journal.
"""

import json

from repro.reliability.heartbeat import HeartbeatJournal
from repro.reliability.supervisor import (
    SupervisorConfig,
    TaskRunner,
    supervise_tasks,
)
from repro.reliability.transfer import TransferPolicy

#: Short backoff so exhausted-retry paths run in test time.
FAST = TransferPolicy(max_retries=1, backoff_base_us=5_000.0)


class SquareRunner(TaskRunner):
    """Trivial picklable task body: square the payload."""

    def task_key(self, payload) -> str:
        return f"square:{payload}"

    def run(self, payload):
        return payload * payload


class TestSerialDegradation:
    def test_env_chaos_exhausts_workers_then_serial_completes(
        self, tmp_path, monkeypatch
    ):
        # Every parallel attempt dies (max_attempt effectively infinite),
        # and a single casualty exhausts the replacement budget: only
        # degraded-mode serial execution can finish the sweep.
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps({"seed": 5, "kill_rate": 1.0, "max_attempt": 99}),
        )
        hb_path = tmp_path / "hb.jsonl"
        todo = [(i, i + 1) for i in range(6)]
        results = supervise_tasks(
            todo,
            SquareRunner(),
            jobs=2,
            cfg=SupervisorConfig(
                retry=FAST,
                max_worker_failures=1,
                heartbeat_path=hb_path,
            ),
        )
        assert results == {i: (i + 1) ** 2 for i in range(6)}

        hb = HeartbeatJournal(hb_path)
        degrades = hb.events("degrade")
        assert any(e.get("scope") == "sweep" for e in degrades)
        # Every task that completed after the degradation ran serially,
        # and the journal shows each one.
        serial_tasks = {e["task"] for e in hb.events("serial")}
        done_tasks = {e["task"] for e in hb.events("done")}
        assert serial_tasks, "no serial events journaled"
        assert done_tasks == {i for i, _ in todo}

    def test_clean_env_run_stays_parallel(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        hb_path = tmp_path / "hb.jsonl"
        todo = [(i, i) for i in range(4)]
        results = supervise_tasks(
            todo,
            SquareRunner(),
            jobs=2,
            cfg=SupervisorConfig(retry=FAST, heartbeat_path=hb_path),
        )
        assert results == {i: i * i for i in range(4)}
        hb = HeartbeatJournal(hb_path)
        assert not hb.events("degrade")
        assert not hb.events("serial")
        assert len(hb.events("dispatch")) == len(todo)
