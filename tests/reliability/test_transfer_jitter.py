"""Full-jitter retry backoff: seeded, deterministic, decorrelating."""

import pytest

from repro.reliability.transfer import TransferPolicy


class TestFixedSchedule:
    def test_zero_jitter_is_the_exponential_ceiling(self):
        policy = TransferPolicy(backoff_base_us=10.0, backoff_factor=2.0)
        assert [policy.backoff_us(r) for r in range(4)] == [
            10.0,
            20.0,
            40.0,
            80.0,
        ]

    def test_zero_jitter_ignores_the_key(self):
        policy = TransferPolicy()
        assert policy.backoff_us(2, key="a") == policy.backoff_us(2, key="b")


class TestJitterBounds:
    def test_full_jitter_stays_in_zero_ceiling(self):
        policy = TransferPolicy(
            backoff_base_us=10.0, backoff_factor=2.0, jitter=1.0
        )
        for r in range(6):
            ceiling = 10.0 * 2.0**r
            for key in ("w0", "w1", "w2"):
                wait = policy.backoff_us(r, key=key)
                assert 0.0 < wait <= ceiling

    def test_partial_jitter_keeps_the_deterministic_floor(self):
        policy = TransferPolicy(backoff_base_us=100.0, jitter=0.25)
        wait = policy.backoff_us(0, key="k")
        assert 75.0 < wait <= 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            TransferPolicy(jitter=-0.1)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = TransferPolicy(jitter=1.0, jitter_seed=7)
        b = TransferPolicy(jitter=1.0, jitter_seed=7)
        for r in range(5):
            assert a.backoff_us(r, key="task") == b.backoff_us(r, key="task")


class TestDecorrelation:
    def test_colliding_retriers_decorrelate_by_key(self):
        # The stampede scenario: many workers retry the same failure on
        # the same round. A fixed schedule wakes them simultaneously;
        # full jitter must spread them out.
        policy = TransferPolicy(jitter=1.0, jitter_seed=0)
        waits = [policy.backoff_us(0, key=f"worker-{w}") for w in range(16)]
        assert len(set(waits)) == 16

    def test_colliding_retriers_decorrelate_by_seed(self):
        # Same key, distinct jitter seeds (e.g. per-tenant links derived
        # from one run seed) must also diverge.
        waits = [
            TransferPolicy(jitter=1.0, jitter_seed=s).backoff_us(
                0, key="shared"
            )
            for s in range(16)
        ]
        assert len(set(waits)) == 16

    def test_rounds_are_independent_draws(self):
        policy = TransferPolicy(
            backoff_base_us=10.0, backoff_factor=1.0, jitter=1.0
        )
        waits = [policy.backoff_us(r, key="k") for r in range(8)]
        assert len(set(waits)) == 8
