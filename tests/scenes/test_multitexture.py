"""Tests for the multi-texture Village variant and seed robustness."""

import numpy as np
import pytest

from repro.scenes import build_city, build_village
from repro.experiments.config import Scale
from repro.experiments.traces import render_trace
from repro.texture.sampler import FilterMode
from repro.texture.tiling import unpack_tile_refs

MICRO = Scale(width=64, height=48, frames=2, detail=0.2, name="micro")


class TestVillageMT:
    def test_lightmaps_loaded_and_bound(self):
        wl = build_village(detail=0.3, multitexture=True)
        names = [t.name for t in wl.scene.manager.textures]
        assert any("lightmap" in n for n in names)
        bound = [
            i.secondary_texture_id
            for i in wl.scene.instances
            if i.secondary_texture_id is not None
        ]
        assert len(bound) > 5

    def test_plain_village_has_no_secondary(self):
        wl = build_village(detail=0.3, multitexture=False)
        assert all(i.secondary_texture_id is None for i in wl.scene.instances)

    def test_workload_name(self):
        assert build_village(detail=0.3, multitexture=True).name == "village-mt"

    def test_trace_references_lightmaps(self):
        trace = render_trace("village-mt", MICRO, FilterMode.POINT)
        wl = build_village(detail=MICRO.detail, multitexture=True)
        lightmap_tids = {
            tid
            for tid, t in enumerate(wl.scene.manager.textures)
            if "lightmap" in t.name
        }
        touched = set()
        for frame in trace.frames:
            touched |= set(np.unique(unpack_tile_refs(frame.refs).tid).tolist())
        assert touched & lightmap_tids

    def test_mt_reads_exceed_plain(self):
        plain = render_trace("village", MICRO, FilterMode.POINT)
        mt = render_trace("village-mt", MICRO, FilterMode.POINT)
        assert mt.total_texel_reads() > plain.total_texel_reads()
        # Fragment counts are identical: multi-texturing adds reads, not
        # coverage.
        assert [f.n_fragments for f in mt.frames] == [
            f.n_fragments for f in plain.frames
        ]


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [1, 99])
    def test_alternate_seeds_build_and_render(self, seed):
        wl = build_city(detail=0.2, seed=seed)
        assert wl.scene.triangle_count > 0
        wl2 = build_village(detail=0.2, seed=seed)
        assert wl2.scene.triangle_count > 0

    def test_different_seeds_differ(self):
        a = build_city(detail=0.3, seed=1)
        b = build_city(detail=0.3, seed=2)
        ha = [i.mesh.positions[:, 1].max() for i in a.scene.instances[1:4]]
        hb = [i.mesh.positions[:, 1].max() for i in b.scene.instances[1:4]]
        assert ha != hb
