"""Tests for the procedural workload builders."""

import numpy as np
import pytest

from repro.scenes import (
    WORKLOAD_BUILDERS,
    build_city,
    build_future,
    build_terrain,
    build_village,
)
from repro.texture.tiling import AddressSpace


@pytest.mark.parametrize("name,builder", sorted(WORKLOAD_BUILDERS.items()))
class TestAllWorkloads:
    def test_builds_valid_scene(self, name, builder):
        wl = builder(detail=0.3)
        assert wl.name == name
        assert len(wl.scene.instances) > 0
        assert len(wl.scene.manager) > 0

    def test_all_bindings_resolve(self, name, builder):
        wl = builder(detail=0.3)
        for inst in wl.scene.instances:
            assert wl.scene.manager.is_loaded(inst.texture_id)

    def test_deterministic(self, name, builder):
        a = builder(detail=0.3)
        b = builder(detail=0.3)
        assert len(a.scene.instances) == len(b.scene.instances)
        for ia, ib in zip(a.scene.instances, b.scene.instances):
            assert ia.texture_id == ib.texture_id
            assert np.allclose(ia.model, ib.model)

    def test_detail_scales_scene(self, name, builder):
        small = builder(detail=0.3)
        big = builder(detail=1.0)
        assert big.scene.triangle_count > small.scene.triangle_count
        assert len(big.scene.manager) >= len(small.scene.manager)

    def test_address_space_constructible(self, name, builder):
        wl = builder(detail=0.3)
        space = AddressSpace(wl.scene.manager.textures)
        assert space.texture_count == len(wl.scene.manager)

    def test_camera_path_spans_animation(self, name, builder):
        wl = builder(detail=0.3)
        cams = wl.cameras(10)
        assert len(cams) == 10
        eyes = np.array([c.eye for c in cams])
        assert np.linalg.norm(eyes[-1] - eyes[0]) > 1.0  # the camera moves

    def test_images_only_when_requested(self, name, builder):
        bare = builder(detail=0.3, with_images=False)
        assert all(t.image is None for t in bare.scene.manager.textures)
        shaded = builder(detail=0.3, with_images=True)
        assert all(t.image is not None for t in shaded.scene.manager.textures)


class TestWorkloadSignatures:
    """The texture-locality signatures the paper attributes to each scene."""

    def test_village_shares_wall_textures(self):
        wl = build_village(detail=1.0)
        # Count instances per texture: shared wall textures bind many houses.
        counts: dict[int, int] = {}
        for inst in wl.scene.instances:
            counts[inst.texture_id] = counts.get(inst.texture_id, 0) + 1
        assert max(counts.values()) >= 5

    def test_city_has_unique_facades(self):
        wl = build_city(detail=1.0)
        building_instances = [
            i for i in wl.scene.instances if i.name.startswith("building")
        ]
        tids = [i.texture_id for i in building_instances]
        assert len(set(tids)) == len(tids)  # no sharing between buildings

    def test_future_bigger_than_city(self):
        city = build_city(detail=1.0)
        future = build_future(detail=1.0)
        city_bytes = sum(t.host_bytes for t in city.scene.manager.textures)
        future_bytes = sum(t.host_bytes for t in future.scene.manager.textures)
        assert future_bytes > 2 * city_bytes

    def test_village_walkthrough_at_eye_height(self):
        wl = build_village(detail=0.3)
        eyes = np.array([c.eye for c in wl.cameras(16)])
        assert np.all(eyes[:, 1] < 3.0)  # ground-level walk

    def test_city_flythrough_above_ground(self):
        wl = build_city(detail=0.3)
        eyes = np.array([c.eye for c in wl.cameras(16)])
        assert np.all(eyes[:, 1] > 10.0)  # aerial fly-through

    def test_terrain_patches_never_share_textures(self):
        # The VT stressor: every ground patch pages its own texels.
        wl = build_terrain(detail=1.0)
        patch_tids = [
            i.texture_id for i in wl.scene.instances if i.name.startswith("patch")
        ]
        assert len(patch_tids) == 36  # 6x6 grid at detail 1.0
        assert len(set(patch_tids)) == len(patch_tids)

    def test_terrain_footprint_exceeds_any_resident_budget(self):
        wl = build_terrain(detail=1.0)
        total = sum(t.host_bytes for t in wl.scene.manager.textures)
        assert total > 4 * 1024 * 1024  # far beyond the paper's cache sizes

    def test_terrain_paraglider_descends(self):
        wl = build_terrain(detail=0.3)
        eyes = np.array([c.eye for c in wl.cameras(16)])
        # Starts in a high overview, ends skimming the surface.
        assert eyes[0, 1] > 10 * eyes[-1, 1]
        assert np.all(np.diff(eyes[:, 1]) < 0)  # monotone descent
