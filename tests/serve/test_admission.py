"""Tests for admission control: bounded queues, SLO projection, typing."""

import pytest

from repro.errors import AdmissionRejectedError, ReproError, ServeError
from repro.serve import AdmissionController, CircuitBreaker, TenantSLO


def make_controller(epoch_us=1000.0, safety=1.0, strict=False, **slo_kw):
    slo_kw.setdefault("frame_budget_us", 10_000.0)
    slo_kw.setdefault("queue_frames", 3)
    slos = [TenantSLO(name="t0", **slo_kw)]
    return AdmissionController(slos, epoch_us, safety=safety, strict=strict)


class TestBoundedQueue:
    def test_queue_never_exceeds_bound(self):
        ctrl = make_controller()
        outcomes = [
            ctrl.offer(0, 100.0, epoch, share_us=1000.0) for epoch in range(10)
        ]
        assert [d.admitted for d in outcomes[:3]] == [True, True, True]
        assert all(not d.admitted for d in outcomes[3:])
        assert all(d.reason == "queue-full" for d in outcomes[3:])
        assert ctrl.depth(0) == 3
        assert ctrl.rejected[0]["queue-full"] == 7

    def test_serving_frees_slots(self):
        ctrl = make_controller()
        for epoch in range(3):
            ctrl.offer(0, 100.0, epoch, share_us=1000.0)
        ctrl.queues[0].pop(0)
        assert ctrl.offer(0, 100.0, 9, share_us=1000.0).admitted


class TestSLOProjection:
    def test_projection_is_ceil_of_queue_drain(self):
        ctrl = make_controller()
        assert ctrl.projected_wait_us(0, 1500.0, share_us=1000.0) == 2000.0
        ctrl.offer(0, 1500.0, 0, share_us=1000.0)
        # 1500 queued + 1500 offered at 1000 us/epoch -> 3 epochs.
        assert ctrl.projected_wait_us(0, 1500.0, share_us=1000.0) == 3000.0

    def test_zero_share_projects_infinite(self):
        ctrl = make_controller()
        assert ctrl.projected_wait_us(0, 1.0, share_us=0.0) == float("inf")

    def test_rejects_when_budget_exceeded(self):
        ctrl = make_controller(frame_budget_us=2000.0)
        assert ctrl.offer(0, 1800.0, 0, share_us=1000.0).admitted
        decision = ctrl.offer(0, 1800.0, 0, share_us=1000.0)
        assert not decision.admitted
        assert decision.reason == "slo"

    def test_safety_tightens_the_gate(self):
        # A frame projecting exactly at budget passes at safety=1 but
        # fails at safety=0.5.
        loose = make_controller(frame_budget_us=2000.0, safety=1.0)
        tight = make_controller(frame_budget_us=2000.0, safety=0.5)
        assert loose.offer(0, 1500.0, 0, share_us=1000.0).admitted
        assert tight.offer(0, 1500.0, 0, share_us=1000.0).reason == "slo"


class TestBreakerPrecedence:
    def test_open_breaker_wins_over_queue_full(self):
        ctrl = make_controller()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_epochs=100)
        for epoch in range(3):
            ctrl.offer(0, 100.0, epoch, share_us=1000.0)
        breaker.record_failure(3)
        decision = ctrl.offer(0, 100.0, 3, share_us=1000.0, breaker=breaker)
        assert decision.reason == "breaker-open"


class TestTypedErrors:
    def test_rejection_carries_typed_error(self):
        ctrl = make_controller(frame_budget_us=100.0)
        decision = ctrl.offer(0, 1500.0, 0, share_us=1000.0)
        assert isinstance(decision.error, AdmissionRejectedError)
        assert isinstance(decision.error, ServeError)
        assert isinstance(decision.error, ReproError)
        assert decision.error.reason == "slo"

    def test_strict_mode_raises(self):
        ctrl = make_controller(frame_budget_us=100.0, strict=True)
        with pytest.raises(AdmissionRejectedError):
            ctrl.offer(0, 1500.0, 0, share_us=1000.0)

    def test_reason_must_be_known(self):
        with pytest.raises(ValueError):
            AdmissionRejectedError(0, "because")


class TestSnapshot:
    def test_roundtrip(self):
        ctrl = make_controller()
        for epoch in range(5):
            ctrl.offer(0, 100.0 * (epoch + 1), epoch, share_us=1000.0)
        state = ctrl.snapshot_state()
        other = make_controller()
        other.restore_state(state)
        assert other.snapshot_state() == state
        assert other.queued_cost_us(0) == ctrl.queued_cost_us(0)
