"""Tests for the per-tenant circuit-breaker state machine."""

import pytest

from repro.serve import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class TestTrip:
    def test_consecutive_failures_trip(self):
        b = CircuitBreaker(failure_threshold=3, cooldown_epochs=4)
        b.record_failure(0)
        b.record_failure(1)
        assert b.state == CLOSED
        b.record_failure(2)
        assert b.state == OPEN
        assert not b.admits(2)
        assert not b.serves(2)

    def test_success_resets_the_count(self):
        b = CircuitBreaker(failure_threshold=3)
        b.record_failure(0)
        b.record_failure(1)
        b.record_success(2)
        b.record_failure(3)
        b.record_failure(4)
        assert b.state == CLOSED  # never three *consecutive*


class TestHalfOpen:
    def test_cooldown_then_probe(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_epochs=4)
        b.record_failure(10)
        assert b.state == OPEN
        assert not b.admits(13)  # cooldown not elapsed
        assert b.admits(14)      # probe window opens
        assert b.state == HALF_OPEN
        assert b.probing

    def test_clean_probe_closes(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_epochs=2)
        b.record_failure(0)
        assert b.admits(2)
        b.record_success(2)
        assert b.state == CLOSED
        assert not b.probing

    def test_faulty_probe_reopens_full_cooldown(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_epochs=3)
        b.record_failure(0)
        assert b.admits(3)
        b.record_failure(3)
        assert b.state == OPEN
        assert not b.admits(5)
        assert b.admits(6)  # new cooldown from the probe failure


class TestTransitions:
    def test_full_cycle_recorded(self):
        b = CircuitBreaker(failure_threshold=2, cooldown_epochs=2)
        b.record_failure(0)
        b.record_failure(1)
        b.admits(3)
        b.record_success(3)
        assert b.transitions == [
            (1, CLOSED, OPEN),
            (3, OPEN, HALF_OPEN),
            (3, HALF_OPEN, CLOSED),
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_epochs=0)


class TestSnapshot:
    def test_roundtrip_mid_cycle(self):
        b = CircuitBreaker(failure_threshold=2, cooldown_epochs=3)
        b.record_failure(0)
        b.record_failure(1)
        b.admits(4)
        state = b.snapshot_state()
        other = CircuitBreaker(failure_threshold=2, cooldown_epochs=3)
        other.restore_state(state)
        assert other.state == HALF_OPEN
        assert other.snapshot_state() == state
        other.record_success(4)
        b.record_success(4)
        assert other.transitions == b.transitions
