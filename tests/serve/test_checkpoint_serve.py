"""Serving-system snapshot/restore and checkpoint-resume determinism."""

import numpy as np

from repro.reliability.chaos import ChaosPolicy
from repro.reliability.faults import FaultModel
from repro.serve import (
    ArrivalPattern,
    ServeConfig,
    ServingSystem,
    TenantSLO,
    bursty_arrivals,
)
from repro.serve.system import journal_json

EPOCH_US = 8_000.0


def make_system(seed=4):
    config = ServeConfig(
        epoch_us=EPOCH_US,
        breaker_threshold=2,
        breaker_cooldown_epochs=3,
        chaos=ChaosPolicy(
            seed=9, kill_rate=0.2, stall_rate=0.1, stall_s=0.001,
            max_attempt=2,
        ),
    )
    slos = [
        TenantSLO(
            name="a", frame_budget_us=30_000.0, queue_frames=4,
            protected=True,
        ),
        TenantSLO(
            name="b",
            frame_budget_us=60_000.0,
            queue_frames=6,
            fault_model=FaultModel(drop_rate=0.25, seed=2),
        ),
    ]
    return ServingSystem(
        config, slos, [[1500.0], [2500.0, 3000.0]], seed=seed
    )


def arrivals(epochs, seed=12):
    return bursty_arrivals(
        ArrivalPattern(rates=(1.0, 3.0)), epochs, seed=seed
    )


class TestSnapshotRestore:
    def test_roundtrip_is_exact(self):
        system = make_system()
        sched = arrivals(30)
        for counts in sched[:17]:
            system.run_epoch(counts)
        state = system.snapshot_state()
        other = make_system()
        other.restore_state(state)
        assert other.snapshot_state() == state

    def test_restored_system_resumes_identically(self):
        sched = arrivals(40)
        straight = make_system()
        for counts in sched:
            straight.run_epoch(counts)

        resumed = make_system()
        for counts in sched[:19]:
            resumed.run_epoch(counts)
        state = resumed.snapshot_state()
        fresh = make_system()
        fresh.restore_state(state)
        for counts in sched[19:]:
            fresh.run_epoch(counts)

        assert journal_json(fresh.journal) == journal_json(straight.journal)
        assert fresh.report().to_json() == straight.report().to_json()


class TestCheckpointFile:
    def test_checkpoint_resume_is_byte_identical(self, tmp_path):
        sched = arrivals(36)
        straight = make_system()
        for counts in sched:
            straight.run_epoch(counts)

        half = make_system()
        for counts in sched[:15]:
            half.run_epoch(counts)
        ckpt = half.save_checkpoint(tmp_path / "serve.npz")

        resumed = make_system()
        resumed.load_checkpoint(ckpt)
        for counts in sched[15:]:
            resumed.run_epoch(counts)

        assert journal_json(resumed.journal) == journal_json(
            straight.journal
        )
        assert resumed.report().to_json() == straight.report().to_json()

    def test_checkpoint_bytes_deterministic(self, tmp_path):
        system = make_system()
        for counts in arrivals(10):
            system.run_epoch(counts)
        a = system.save_checkpoint(tmp_path / "a.npz")
        b = system.save_checkpoint(tmp_path / "b.npz")
        assert a.read_bytes() == b.read_bytes()
