"""Acceptance test: the serving layer under seeded overload + chaos.

This is the contract for the QoS serving layer, end to end:

* protected tenants never exceed their SLO budget even at ~2x offered
  load with chaos kills/stalls and a faulty offender link;
* no queue ever grows past its declared bound (backpressure, not
  unbounded growth);
* circuit breakers trip under repeated fault episodes AND recover
  through a half-open probe, visibly in the journal;
* two same-seed runs produce byte-identical journals and reports;
* fairness feedback measurably beats static weights on worst-tenant
  slowdown when several tenants stay backlogged.
"""

import numpy as np

from repro.reliability.chaos import ChaosPolicy
from repro.reliability.faults import FaultModel
from repro.serve import (
    ArrivalPattern,
    ServeConfig,
    ServingSystem,
    TenantSLO,
    bursty_arrivals,
)
from repro.serve.system import journal_json

EPOCH_US = 10_000.0
EPOCHS = 120
ARRIVAL_SEED = 7
SERVE_SEED = 5

# Three tenants at ~1.9x mean offered load (bursts push past 2x): one
# protected, two persistently backlogged offenders — feedback needs at
# least two backlogged tenants to have anything to re-divide.
COSTS = {
    "prot": [2000.0],
    "off-a": [3000.0, 3200.0],
    "off-b": [2500.0, 2700.0],
}
RATES = (1.0, 3.0, 3.0)


PROT_BUDGET_US = 10 * EPOCH_US


def make_slos(faulty=False):
    fault = FaultModel(drop_rate=0.3, seed=3) if faulty else None
    return [
        TenantSLO(
            name="prot",
            frame_budget_us=PROT_BUDGET_US,
            weight=2.0,
            queue_frames=4,
            protected=True,
        ),
        TenantSLO(
            name="off-a",
            frame_budget_us=20 * EPOCH_US,
            weight=1.0,
            queue_frames=8,
            fault_model=fault,
        ),
        TenantSLO(
            name="off-b",
            frame_budget_us=20 * EPOCH_US,
            weight=1.0,
            queue_frames=8,
        ),
    ]


def run_once(feedback=True, chaos=True, faulty=True, seed=SERVE_SEED):
    config = ServeConfig(
        epoch_us=EPOCH_US,
        slo_safety=0.6,
        feedback=feedback,
        breaker_threshold=2,
        breaker_cooldown_epochs=3,
        chaos=ChaosPolicy(
            seed=23, kill_rate=0.25, stall_rate=0.1, stall_s=0.002,
            max_attempt=2,
        )
        if chaos
        else None,
    )
    slos = make_slos(faulty=faulty)
    system = ServingSystem(
        config, slos, [COSTS[s.name] for s in slos], seed=seed
    )
    arrivals = bursty_arrivals(
        ArrivalPattern(rates=RATES), EPOCHS, seed=ARRIVAL_SEED
    )
    report = system.run(arrivals)
    return system, report


class TestOverloadChaos:
    def test_protected_tenant_stays_inside_slo(self):
        _, report = run_once()
        assert report.protected_violations == 0
        prot = report.tenants[0]
        assert prot.completed > 0
        assert prot.p99_latency_us <= PROT_BUDGET_US

    def test_queues_stay_bounded(self):
        system, report = run_once()
        bounds = [slo.queue_frames for slo in system.slos]
        for ev in report.journal:
            if ev["event"] == "epoch":
                for depth, bound in zip(ev["queued"], bounds):
                    assert depth <= bound
        # Backpressure actually engaged: overload was rejected, not grown.
        assert sum(
            sum(t.rejected.values()) for t in report.tenants
        ) > 0

    def test_breakers_trip_and_recover_via_half_open(self):
        _, report = run_once()
        trips = sum(t.breaker_trips for t in report.tenants)
        recoveries = sum(t.breaker_recoveries for t in report.tenants)
        assert trips >= 1
        assert recoveries >= 1
        cycle = [
            ev
            for ev in report.journal
            if ev["event"] == "breaker"
            and ev["from"] == "half-open"
            and ev["to"] == "closed"
        ]
        assert cycle, "no half-open -> closed recovery in the journal"

    def test_same_seed_runs_are_byte_identical(self):
        sys_a, rep_a = run_once()
        sys_b, rep_b = run_once()
        assert journal_json(sys_a.journal) == journal_json(sys_b.journal)
        assert rep_a.to_json() == rep_b.to_json()

    def test_distinct_seeds_diverge(self):
        _, rep_a = run_once(seed=SERVE_SEED)
        _, rep_b = run_once(seed=SERVE_SEED + 1)
        assert rep_a.to_json() != rep_b.to_json()

    def test_shedding_degrades_before_dropping(self):
        _, report = run_once()
        # Under sustained overload the offenders run MIP-biased...
        assert any(t.final_bias > 0 for t in report.tenants if not t.protected)
        # ...while the protected tenant is never degraded or deferred.
        prot = report.tenants[0]
        assert prot.final_bias == 0
        assert prot.deferred_epochs == 0


class TestFeedbackBeatsStatic:
    def test_feedback_improves_worst_tenant_slowdown(self):
        # Clean overload (no chaos/faults) isolates the scheduling
        # effect: feedback re-weighting must measurably beat static
        # weights on the worst backlogged tenant.
        _, static = run_once(feedback=False, chaos=False, faulty=False)
        _, feedback = run_once(feedback=True, chaos=False, faulty=False)
        assert feedback.worst_slowdown < static.worst_slowdown
        # And not by starving anyone: everyone still completes work.
        assert all(t.completed > 0 for t in feedback.tenants)
