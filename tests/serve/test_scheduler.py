"""Tests for the fairness-feedback reweight rule and scheduler."""

import numpy as np
import pytest

from repro.serve import FeedbackScheduler, reweight


class TestReweight:
    def test_equal_slowdowns_fixed_point(self):
        w = reweight([1.0, 1.0, 1.0], [2.0, 2.0, 2.0])
        assert np.allclose(w, [1.0, 1.0, 1.0])

    def test_suffering_tenant_gains_weight(self):
        w = reweight([1.0, 1.0, 1.0], [4.0, 1.0, 1.0])
        assert w[0] > 1.0
        assert w[1] < 1.0
        assert w[1] == pytest.approx(w[2])

    def test_normalized_to_tenant_count(self):
        w = reweight([3.0, 0.5, 1.0, 2.0], [1.0, 9.0, 2.0, 1.0])
        assert w.sum() == pytest.approx(4.0)

    def test_alpha_damps_the_step(self):
        big = reweight([1.0, 1.0], [4.0, 1.0], alpha=1.0)
        small = reweight([1.0, 1.0], [4.0, 1.0], alpha=0.1)
        assert big[0] > small[0] > 1.0

    def test_bounds_cap_runaway_weights(self):
        w = [1.0, 1.0]
        for _ in range(50):
            w = reweight(w, [1000.0, 1.0], bounds=(0.25, 4.0))
        # Clip-then-renormalize keeps the ratio within the bound ratio.
        assert w[0] / w[1] <= 4.0 / 0.25 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            reweight([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            reweight([0.0, 1.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            reweight([1.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            reweight([1.0, 1.0], [1.0, 1.0], alpha=-1.0)
        with pytest.raises(ValueError):
            reweight([1.0, 1.0], [1.0, 1.0], bounds=(0.0, 4.0))


class TestFeedbackScheduler:
    def test_shares_follow_weights(self):
        sched = FeedbackScheduler([3.0, 1.0])
        shares = sched.shares_us(1000.0)
        assert shares[0] == pytest.approx(750.0)
        assert shares[1] == pytest.approx(250.0)

    def test_reweights_on_period_only(self):
        sched = FeedbackScheduler([1.0, 1.0], period=4)
        for t in (0, 1):
            sched.observe(t, 1000.0)
        assert sched.maybe_reweight(0, 1000.0) is None
        assert sched.maybe_reweight(2, 1000.0) is None
        event = sched.maybe_reweight(3, 1000.0)
        assert event is not None
        assert event["event"] == "reweight"
        assert sched.reweights == 1

    def test_disabled_scheduler_stays_static(self):
        sched = FeedbackScheduler([1.0, 1.0], period=1, enabled=False)
        sched.observe(0, 9000.0)
        sched.observe(1, 1000.0)
        assert sched.maybe_reweight(0, 1000.0) is None
        assert np.allclose(sched.weights, [1.0, 1.0])

    def test_slow_tenant_gains_share(self):
        sched = FeedbackScheduler([1.0, 1.0], period=1)
        sched.observe(0, 5000.0)
        sched.observe(1, 1000.0)
        sched.maybe_reweight(0, 1000.0)
        assert sched.weights[0] > sched.weights[1]

    def test_silent_tenant_keeps_previous_slowdown(self):
        sched = FeedbackScheduler([1.0, 1.0], period=1)
        sched.observe(0, 4000.0)
        sched.observe(1, 1000.0)
        first = sched.maybe_reweight(0, 1000.0)
        # Tenant 0 completes nothing in the next window: its slowdown
        # must carry over, not reset to healthy.
        sched.observe(1, 1000.0)
        second = sched.maybe_reweight(1, 1000.0)
        assert second["slowdowns"][0] == first["slowdowns"][0]

    def test_snapshot_roundtrip(self):
        sched = FeedbackScheduler([1.0, 2.0], period=2)
        sched.observe(0, 3000.0)
        sched.observe(1, 1000.0)
        sched.maybe_reweight(1, 1000.0)
        sched.observe(0, 2000.0)
        state = sched.snapshot_state()
        other = FeedbackScheduler([1.0, 1.0], period=2)
        other.restore_state(state)
        assert other.snapshot_state() == state
        assert np.allclose(other.weights, sched.weights)
