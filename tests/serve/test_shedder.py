"""Tests for the bias-then-defer load shedder."""

import pytest

from repro.serve import LoadShedder, TenantSLO
from repro.vt.shed import bias_cost_multiplier


def make_slos(n=3, protected=(0,)):
    return [
        TenantSLO(
            name=f"t{i}",
            frame_budget_us=10_000.0,
            queue_frames=8,
            protected=i in protected,
        )
        for i in range(n)
    ]


class TestCostMultiplier:
    def test_floor_bounds_the_falloff(self):
        shed = LoadShedder(make_slos(), cost_floor=0.4)
        assert shed.multiplier(0) == 1.0
        assert shed.multiplier(1) == pytest.approx(0.4 + 0.6 * 0.25)
        # Even infinite bias cannot remove the non-texture floor.
        assert shed.multiplier(10) > 0.4

    def test_zero_floor_recovers_raw_mip_falloff(self):
        shed = LoadShedder(make_slos(), cost_floor=0.0)
        for bias in range(4):
            assert shed.multiplier(bias) == pytest.approx(
                bias_cost_multiplier(bias)
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadShedder(make_slos(), cost_floor=1.5)
        with pytest.raises(ValueError):
            LoadShedder(make_slos(), max_bias=-1)
        with pytest.raises(ValueError):
            LoadShedder(make_slos(), restore_headroom=2.0, shed_headroom=1.0)
        with pytest.raises(ValueError):
            LoadShedder(make_slos(), defer_headroom=0.5, shed_headroom=1.0)


class TestBiasLadder:
    def test_under_capacity_no_action(self):
        shed = LoadShedder(make_slos())
        plan = shed.plan(0, [100.0, 100.0, 100.0], capacity_us=1000.0)
        assert plan.biases == [0, 0, 0]
        assert plan.deferred == []

    def test_worst_unprotected_offender_biased_first(self):
        shed = LoadShedder(make_slos(), cost_floor=0.0)
        # Tenant 0 (protected) offers the most; tenant 2 is the worst
        # unprotected offender and must take the bias.
        plan = shed.plan(0, [600.0, 100.0, 500.0], capacity_us=1000.0)
        assert plan.biases[0] == 0
        assert plan.biases[2] > 0

    def test_bias_before_defer(self):
        shed = LoadShedder(make_slos(), max_bias=2, cost_floor=0.0)
        # 5x overload: two bias levels (4x falloff each) absorb it
        # without deferring anything.
        plan = shed.plan(0, [0.0, 0.0, 5000.0], capacity_us=1000.0)
        assert plan.deferred == []
        assert plan.biases[2] == 2

    def test_defer_only_past_the_defer_watermark(self):
        shed = LoadShedder(
            make_slos(), max_bias=1, cost_floor=1.0, defer_headroom=1.5
        )
        # cost_floor=1 makes bias useless; 1.4x stays under the defer
        # watermark, 2x crosses it.
        plan = shed.plan(0, [0.0, 0.0, 1400.0], capacity_us=1000.0)
        assert plan.deferred == []
        plan = shed.plan(1, [0.0, 0.0, 2000.0], capacity_us=1000.0)
        assert plan.deferred == [2]
        assert shed.defer_events == 1

    def test_protected_never_biased_or_deferred(self):
        shed = LoadShedder(make_slos(), max_bias=3, cost_floor=1.0)
        plan = shed.plan(0, [50_000.0, 10.0, 10.0], capacity_us=1000.0)
        assert plan.biases[0] == 0
        assert 0 not in plan.deferred


class TestHysteresis:
    def test_restore_one_level_per_epoch_under_watermark(self):
        shed = LoadShedder(
            make_slos(), cost_floor=0.0, restore_headroom=0.8
        )
        shed.plan(0, [0.0, 0.0, 5000.0], capacity_us=1000.0)
        assert shed.biases[2] >= 2
        start = shed.biases[2]
        # Load vanishes: bias comes back one level per epoch, not all at
        # once.
        shed.plan(1, [0.0, 0.0, 100.0], capacity_us=1000.0)
        assert shed.biases[2] == start - 1
        shed.plan(2, [0.0, 0.0, 100.0], capacity_us=1000.0)
        assert shed.biases[2] == start - 2

    def test_no_restore_between_watermarks(self):
        shed = LoadShedder(
            make_slos(), cost_floor=0.0, shed_headroom=1.0, restore_headroom=0.8
        )
        shed.plan(0, [0.0, 0.0, 3000.0], capacity_us=1000.0)
        bias = shed.biases[2]
        # 0.9x capacity: above restore, below shed -> hold steady.
        shed.plan(1, [0.0, 0.0, 900.0 / shed.multiplier(bias)], 1000.0)
        assert shed.biases[2] == bias


class TestSnapshot:
    def test_roundtrip(self):
        shed = LoadShedder(make_slos())
        shed.plan(0, [0.0, 500.0, 5000.0], capacity_us=1000.0)
        state = shed.snapshot_state()
        other = LoadShedder(make_slos())
        other.restore_state(state)
        assert other.snapshot_state() == state
        assert other.biases == shed.biases
