"""Tests for tenant SLO declarations and seeded bursty arrivals."""

import numpy as np
import pytest

from repro.core.timing import TimingModel
from repro.serve import ArrivalPattern, TenantSLO, bursty_arrivals


class TestTenantSLO:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSLO(name="", frame_budget_us=1000.0)
        with pytest.raises(ValueError):
            TenantSLO(name="t", frame_budget_us=0.0)
        with pytest.raises(ValueError):
            TenantSLO(name="t", frame_budget_us=1000.0, weight=0.0)
        with pytest.raises(ValueError):
            TenantSLO(name="t", frame_budget_us=1000.0, queue_frames=0)

    def test_from_fps_uses_timing_model(self):
        timing = TimingModel()
        slo = TenantSLO.from_fps("t", 30.0, timing, queue_frames=4)
        assert slo.frame_budget_us == pytest.approx(
            timing.frame_budget_us(30.0)
        )
        assert slo.frame_budget_us == pytest.approx(1e6 / 30.0)
        assert slo.queue_frames == 4

    def test_immutable(self):
        slo = TenantSLO(name="t", frame_budget_us=1000.0)
        with pytest.raises(Exception):
            slo.weight = 2.0


class TestBurstyArrivals:
    def test_shape_and_dtype(self):
        pattern = ArrivalPattern(rates=(1.0, 2.0, 0.5))
        counts = bursty_arrivals(pattern, 32, seed=3)
        assert counts.shape == (32, 3)
        assert counts.dtype == np.int64
        assert np.all(counts >= 0)

    def test_deterministic_per_seed(self):
        pattern = ArrivalPattern(rates=(1.3, 0.7))
        a = bursty_arrivals(pattern, 64, seed=9)
        b = bursty_arrivals(pattern, 64, seed=9)
        assert np.array_equal(a, b)
        c = bursty_arrivals(pattern, 64, seed=10)
        assert not np.array_equal(a, c)

    def test_long_run_volume_matches_rate(self):
        # Stochastic rounding + burst windows: mean must track
        # rate * (1 + burst_prob * (burst_mult - 1)).
        pattern = ArrivalPattern(rates=(1.5,))
        counts = bursty_arrivals(pattern, 4096, seed=0)
        expected = 1.5 * (1.0 + pattern.burst_prob * (pattern.burst_mult - 1.0))
        assert counts[:, 0].mean() == pytest.approx(expected, rel=0.1)

    def test_burst_windows_visible(self):
        pattern = ArrivalPattern(
            rates=(2.0,), burst_len=4, burst_prob=0.5, burst_mult=4.0
        )
        counts = bursty_arrivals(pattern, 256, seed=1)
        assert counts[:, 0].max() >= 8  # at least one hot window
        assert counts[:, 0].min() <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalPattern(rates=())
        with pytest.raises(ValueError):
            ArrivalPattern(rates=(-1.0,))
        with pytest.raises(ValueError):
            ArrivalPattern(rates=(1.0,), burst_mult=0.5)
        with pytest.raises(ValueError):
            bursty_arrivals(ArrivalPattern(rates=(1.0,)), 0)
