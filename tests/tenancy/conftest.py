"""Shared micro-scale traces for the tenancy test package."""

import pytest

from repro.experiments.config import Scale
from repro.experiments.traces import get_trace
from repro.texture.sampler import FilterMode

MICRO = Scale(width=64, height=48, frames=3, detail=0.2, name="micro")


@pytest.fixture(scope="package")
def village_trace():
    return get_trace("village", MICRO, FilterMode.BILINEAR)


@pytest.fixture(scope="package")
def city_trace():
    return get_trace("city", MICRO, FilterMode.BILINEAR)
