"""Tenant tagging of the packed address space: alias-freedom by construction."""

import numpy as np
import pytest

from repro.tenancy.address import (
    TENANT_TID_CAPACITY,
    tag_refs,
    tenant_gid_extents,
    tenant_of_gids,
    tenant_of_refs,
    tenant_tid_bases,
)
from repro.tenancy.schedule import merge_traces


class TestTidBases:
    def test_exclusive_cumsum(self):
        assert tenant_tid_bases([3, 2, 5]) == (0, 3, 5)
        assert tenant_tid_bases([1]) == (0,)

    def test_rejects_empty_and_textureless_tenants(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            tenant_tid_bases([])
        with pytest.raises(ValueError, match="at least one texture"):
            tenant_tid_bases([3, 0, 2])

    def test_rejects_tid_field_overflow(self):
        with pytest.raises(ValueError, match="overflows"):
            tenant_tid_bases([TENANT_TID_CAPACITY, 1])
        # Exactly at capacity is fine.
        bases = tenant_tid_bases([TENANT_TID_CAPACITY - 1, 1])
        assert bases == (0, TENANT_TID_CAPACITY - 1)


class TestTagging:
    def test_zero_base_is_identity(self, village_trace):
        refs = village_trace.frames[0].refs
        assert tag_refs(refs, 0) is refs

    def test_tenant_recovered_from_tagged_refs(self, village_trace, city_trace):
        bases = tenant_tid_bases(
            [len(village_trace.textures), len(city_trace.textures)]
        )
        refs0 = tag_refs(village_trace.frames[0].refs, bases[0])
        refs1 = tag_refs(city_trace.frames[0].refs, bases[1])
        assert np.all(tenant_of_refs(refs0, bases) == 0)
        assert np.all(tenant_of_refs(refs1, bases) == 1)
        mixed = np.concatenate([refs0, refs1, refs0])
        owners = tenant_of_refs(mixed, bases)
        assert np.array_equal(
            owners,
            np.concatenate(
                [np.zeros(len(refs0)), np.ones(len(refs1)), np.zeros(len(refs0))]
            ),
        )

    def test_tagged_streams_never_alias(self, village_trace, city_trace):
        merged, bases = merge_traces([village_trace, city_trace])
        refs = np.concatenate([f.refs for f in merged.frames])
        owners = tenant_of_refs(refs, bases)
        blocks0 = set(np.unique(refs[owners == 0]).tolist())
        blocks1 = set(np.unique(refs[owners == 1]).tolist())
        assert blocks0 and blocks1
        assert not blocks0 & blocks1


class TestGidExtents:
    def test_extents_tile_the_page_table(self, village_trace, city_trace):
        merged, bases = merge_traces([village_trace, city_trace])
        space = merged.address_space
        extents = tenant_gid_extents(space, bases, 16)
        assert extents[0][0] == 0
        for (_, stop), (start, _) in zip(extents, extents[1:]):
            assert stop == start
        last_start, last_len = space.l2_extent(space.texture_count - 1, 16)
        assert extents[-1][1] == last_start + last_len

    def test_tenant_of_gids_matches_ref_owners(self, village_trace, city_trace):
        merged, bases = merge_traces([village_trace, city_trace])
        space = merged.address_space
        extents = tenant_gid_extents(space, bases, 16)
        refs = np.concatenate([f.refs for f in merged.frames])
        gids, _ = space.l2_addresses(refs, 16)
        assert np.array_equal(
            tenant_of_gids(gids, extents), tenant_of_refs(refs, bases)
        )
        # Boundary gids land on the owning side.
        for t, (start, stop) in enumerate(extents):
            assert tenant_of_gids(np.array([start]), extents)[0] == t
            assert tenant_of_gids(np.array([stop - 1]), extents)[0] == t
