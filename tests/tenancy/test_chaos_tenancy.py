"""Chaos: a killed worker mid-tenancy-sweep must not change the results.

Mirrors the reliability chaos suite for multi-tenant points: the merged
trace, the per-tenant stat vectors, and the partitioned-cache state must
all survive worker SIGKILLs and converge byte-identical to a fault-free
serial run.
"""

import pytest

from repro.core.hierarchy import HierarchyConfig
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig
from repro.experiments import simstore
from repro.experiments.config import Scale
from repro.experiments.parallel import SupervisorConfig, simulate_many
from repro.experiments.simcache import clear_simulation_cache
from repro.experiments.traces import get_trace
from repro.reliability.chaos import ChaosPolicy
from repro.reliability.transfer import TransferPolicy
from repro.tenancy import TenancyConfig, merge_traces
from repro.texture.sampler import FilterMode

CHAOS_MICRO = Scale(width=64, height=48, frames=2, detail=0.2, name="micro")

FAST = TransferPolicy(max_retries=2, backoff_base_us=5_000.0)

L2 = L2CacheConfig(size_bytes=64 * 1024, l2_tile_texels=16)


@pytest.fixture
def fresh_store(isolated_sim_cache):
    clear_simulation_cache()
    simstore.clear()
    yield isolated_sim_cache
    clear_simulation_cache()
    simstore.clear()


def tenancy_points():
    village = get_trace("village", CHAOS_MICRO, FilterMode.POINT)
    city = get_trace("city", CHAOS_MICRO, FilterMode.POINT)
    merged, bases = merge_traces([village, city], schedule="rr", seed=0)
    points = []
    for tenancy in (
        TenancyConfig(tid_bases=bases),
        TenancyConfig(tid_bases=bases, policy="static", quotas=(32, 32)),
        TenancyConfig(
            tid_bases=bases, policy="way", quotas=(4, 4), ways=8
        ),
    ):
        points.append(
            (
                merged,
                HierarchyConfig(
                    l1=L1CacheConfig(size_bytes=2048),
                    l2=L2,
                    tlb_entries=8,
                    tenancy=tenancy,
                ),
            )
        )
    return points


def store_bytes(store_dir):
    return {p.name: p.read_bytes() for p in store_dir.glob("sim_*.npz")}


def test_killed_worker_mid_tenancy_sweep_converges(fresh_store, tmp_path):
    points = tenancy_points()
    serial = simulate_many(points, jobs=1)
    reference = store_bytes(fresh_store)
    assert len(reference) == len(points)
    for res in serial:
        assert all(f.tenants is not None for f in res.frames)

    simstore.clear()
    healed = simulate_many(
        points,
        jobs=2,
        supervisor=SupervisorConfig(
            retry=FAST,
            heartbeat_path=tmp_path / "hb.jsonl",
            chaos=ChaosPolicy(seed=11, kill_rate=1.0, max_attempt=1),
        ),
    )
    assert all(s.frames == h.frames for s, h in zip(serial, healed))
    assert store_bytes(fresh_store) == reference
