"""Checkpoint format v3: tenant columns, partitioned state, v2 back-compat."""

import numpy as np
import pytest

from repro.core.hierarchy import HierarchyConfig, MultiLevelTextureCache
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig
from repro.errors import CheckpointCorruptError
from repro.reliability import checkpoint as ckpt
from repro.tenancy import TenancyConfig, merge_traces

L2 = L2CacheConfig(size_bytes=64 * 1024, l2_tile_texels=16)


def _config(tenancy=None):
    return HierarchyConfig(
        l1=L1CacheConfig(size_bytes=2048),
        l2=L2,
        tlb_entries=8,
        tenancy=tenancy,
    )


@pytest.fixture(scope="module")
def merged_pair(village_trace, city_trace):
    return merge_traces([village_trace, city_trace], schedule="rr", seed=0)


def _way_config(bases):
    return _config(
        TenancyConfig(
            tid_bases=bases,
            policy="way",
            quotas=(4, 4),
            tlb_quotas=(4, 4),
            ways=8,
        )
    )


class TestTenancyCheckpointing:
    def test_resume_is_bit_identical(self, merged_pair, tmp_path):
        merged, bases = merged_pair
        config = _way_config(bases)
        plain = MultiLevelTextureCache(
            config, merged.address_space
        ).run_trace(merged)

        path = tmp_path / "tenancy.ckpt"
        checkpointed = MultiLevelTextureCache(
            config, merged.address_space
        ).run_trace(merged, checkpoint_path=path, checkpoint_every=1)
        assert checkpointed.frames == plain.frames

        # The last intermediate checkpoint is on disk; resuming replays
        # only the tail and must agree exactly, tenant vectors included.
        loaded = ckpt.read_checkpoint(path)
        assert 0 < loaded.frame_index < len(merged.frames)
        assert loaded.frames == plain.frames[: loaded.frame_index]
        resumed = MultiLevelTextureCache(
            config, merged.address_space
        ).run_trace(
            merged, checkpoint_path=path, checkpoint_every=1, resume=True
        )
        assert resumed.frames == plain.frames

    def test_tenant_columns_round_trip(self, merged_pair, tmp_path):
        merged, bases = merged_pair
        config = _config(TenancyConfig(tid_bases=bases))
        sim = MultiLevelTextureCache(config, merged.address_space)
        frames = [sim.run_frame(f) for f in merged.frames]
        path = tmp_path / "cols.ckpt"
        ckpt.write_checkpoint(
            path,
            key="k",
            frame_index=len(frames),
            n_frames=len(frames),
            frames=frames,
            state=sim.snapshot_state(),
        )
        loaded = ckpt.read_checkpoint(path, expected_key="k")
        assert loaded.frames == frames
        assert np.array_equal(
            loaded.frames[0].tenants.texel_reads, frames[0].tenants.texel_reads
        )

    def test_partitioned_state_snapshot_round_trips(self, merged_pair):
        merged, bases = merged_pair
        config = _way_config(bases)
        warm = MultiLevelTextureCache(config, merged.address_space)
        warm.run_frame(merged.frames[0])
        state = warm.snapshot_state()
        assert len(state["l2"]["parts"]) == 2
        assert len(state["tlb"]["parts"]) == 2

        cold = MultiLevelTextureCache(config, merged.address_space)
        cold.restore_state(state)
        a = warm.run_frame(merged.frames[1])
        b = cold.run_frame(merged.frames[1])
        assert a == b

    def test_partition_state_tenant_count_mismatch_rejected(self, merged_pair):
        merged, bases = merged_pair
        config = _way_config(bases)
        warm = MultiLevelTextureCache(config, merged.address_space)
        state = warm.snapshot_state()
        state["l2"]["parts"] = state["l2"]["parts"][:1]
        with pytest.raises(ValueError, match="tenant count"):
            MultiLevelTextureCache(
                config, merged.address_space
            ).restore_state(state)


class TestBackCompat:
    def test_v2_checkpoint_still_readable(self, village_trace, tmp_path, monkeypatch):
        config = _config()
        sim = MultiLevelTextureCache(config, village_trace.address_space)
        frames = [sim.run_frame(village_trace.frames[0])]
        key3 = ckpt.run_key(village_trace, config, sim.engine)
        assert key3.startswith("ckpt3|")
        assert key3.endswith(", tenancy=None)")

        # Forge the file a pre-tenancy build would have written: layout
        # version 2, and a run key whose embedded config repr predates the
        # tenancy field.
        legacy_key = "ckpt2|" + key3[len("ckpt3|"):]
        legacy_key = legacy_key[: -len(", tenancy=None)")] + ")"
        path = tmp_path / "legacy.ckpt"
        monkeypatch.setattr(ckpt, "CHECKPOINT_VERSION", 2)
        ckpt.write_checkpoint(
            path,
            key=legacy_key,
            frame_index=1,
            n_frames=len(village_trace.frames),
            frames=frames,
            state=sim.snapshot_state(),
        )
        monkeypatch.undo()

        loaded = ckpt.read_checkpoint(path, expected_key=key3)
        assert loaded.frame_index == 1
        assert loaded.frames == frames

        # The legacy rewrite only accepts the *same* run.
        other = ckpt.run_key(
            village_trace,
            _config(TenancyConfig(tid_bases=(0,))),
            sim.engine,
        )
        with pytest.raises(CheckpointCorruptError, match="different"):
            ckpt.read_checkpoint(path, expected_key=other)

    def test_unsupported_version_rejected(self, village_trace, tmp_path, monkeypatch):
        config = _config()
        sim = MultiLevelTextureCache(config, village_trace.address_space)
        path = tmp_path / "v1.ckpt"
        monkeypatch.setattr(ckpt, "CHECKPOINT_VERSION", 1)
        ckpt.write_checkpoint(
            path,
            key="k",
            frame_index=0,
            n_frames=1,
            frames=[],
            state=sim.snapshot_state(),
        )
        monkeypatch.undo()
        with pytest.raises(CheckpointCorruptError, match="unsupported version"):
            ckpt.read_checkpoint(path)
