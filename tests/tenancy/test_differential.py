"""Differential tests: every partitioning policy, batched vs reference.

The dual-engine contract extends to tenancy: a merged multi-tenant stream
simulated with the batched kernels must be bit-identical — including the
per-tenant stat vectors — to the per-access reference loops, for every
partitioning policy, and a single-tenant "merge" with a full-cache quota
must equal the plain single-tenant simulation.
"""

import numpy as np
import pytest

from repro.core.hierarchy import HierarchyConfig, MultiLevelTextureCache
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig
from repro.tenancy import (
    POLICIES,
    TenancyConfig,
    merge_traces,
    static_quotas,
    utility_quotas,
    way_quotas,
)

L2 = L2CacheConfig(size_bytes=64 * 1024, l2_tile_texels=16)


def _config(tenancy, tlb_entries=8):
    return HierarchyConfig(
        l1=L1CacheConfig(size_bytes=2048),
        l2=L2,
        tlb_entries=tlb_entries,
        tenancy=tenancy,
    )


def _tenancy(policy, bases, traces, tlb_quotas=None):
    if policy == "static":
        quotas = static_quotas(L2, len(traces))
    elif policy == "way":
        quotas = way_quotas(8, len(traces))
    elif policy == "utility":
        quotas = utility_quotas(traces, 2048, L2)
    else:
        quotas = None
    return TenancyConfig(
        tid_bases=bases,
        policy=policy,
        quotas=quotas,
        tlb_quotas=tlb_quotas,
        ways=8,
    )


@pytest.fixture(scope="module")
def merged_pair(village_trace, city_trace):
    return merge_traces([village_trace, city_trace], schedule="rr", seed=0)


class TestEngineIdentity:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_policies_bit_identical_across_engines(
        self, merged_pair, village_trace, city_trace, policy
    ):
        merged, bases = merged_pair
        config = _config(
            _tenancy(policy, bases, [village_trace, city_trace])
        )
        batched = MultiLevelTextureCache(
            config, merged.address_space
        ).run_trace(merged)
        reference = MultiLevelTextureCache(
            config, merged.address_space, use_reference=True
        ).run_trace(merged)
        # FrameCacheStats equality covers the per-tenant vectors too.
        assert batched.frames == reference.frames
        for f in batched.frames:
            assert f.tenants is not None and f.tenants.n_tenants == 2

    def test_partitioned_tlb_bit_identical(
        self, merged_pair, village_trace, city_trace
    ):
        merged, bases = merged_pair
        config = _config(
            _tenancy(
                "static", bases, [village_trace, city_trace], tlb_quotas=(4, 4)
            )
        )
        batched = MultiLevelTextureCache(
            config, merged.address_space
        ).run_trace(merged)
        reference = MultiLevelTextureCache(
            config, merged.address_space, use_reference=True
        ).run_trace(merged)
        assert batched.frames == reference.frames

    def test_bursty_weighted_stream_bit_identical(
        self, village_trace, city_trace
    ):
        merged, bases = merge_traces(
            [village_trace, city_trace],
            schedule="bursty",
            weights=[2.0, 1.0],
            seed=5,
        )
        config = _config(_tenancy("none", bases, [village_trace, city_trace]))
        batched = MultiLevelTextureCache(
            config, merged.address_space
        ).run_trace(merged)
        reference = MultiLevelTextureCache(
            config, merged.address_space, use_reference=True
        ).run_trace(merged)
        assert batched.frames == reference.frames


class TestAttribution:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_tenant_vectors_sum_to_frame_totals(
        self, merged_pair, village_trace, city_trace, policy
    ):
        merged, bases = merged_pair
        config = _config(_tenancy(policy, bases, [village_trace, city_trace]))
        res = MultiLevelTextureCache(
            config, merged.address_space
        ).run_trace(merged)
        for f in res.frames:
            t = f.tenants
            assert int(t.texel_reads.sum()) == f.texel_reads
            assert int(t.l1_accesses.sum()) == f.l1_accesses
            assert int(t.l1_misses.sum()) == f.l1_misses
            assert int(t.l2_accesses.sum()) == f.l2.accesses
            assert int(t.l2_full_hits.sum()) == f.l2.full_hits
            assert int(t.l2_partial_hits.sum()) == f.l2.partial_hits
            assert int(t.l2_full_misses.sum()) == f.l2.full_misses
            assert int(t.l2_evictions.sum()) == f.l2.evictions
            assert int(t.tlb_accesses.sum()) == f.tlb.accesses
            assert int(t.tlb_hits.sum()) == f.tlb.hits

    def test_homogeneous_tenants_attribution_is_symmetric(self, village_trace):
        # Two clones of the same workload on a statically split L2 read
        # the same texels and pull the same unique blocks into their
        # private partitions. (Hit *counts* may differ slightly: the L1
        # is shared, so the interleaving perturbs each clone's miss
        # stream — but not its footprint.)
        merged, bases = merge_traces([village_trace, village_trace])
        config = _config(
            _tenancy("static", bases, [village_trace, village_trace]),
            tlb_entries=None,
        )
        res = MultiLevelTextureCache(
            config, merged.address_space
        ).run_trace(merged)
        for f in res.frames:
            t = f.tenants
            assert t.texel_reads[0] == t.texel_reads[1]
            assert t.l2_full_misses[0] == t.l2_full_misses[1]


class TestSingleTenantEquivalence:
    def test_full_quota_single_tenant_equals_plain_sim(self, village_trace):
        merged, bases = merge_traces([village_trace])
        tenancy = TenancyConfig(
            tid_bases=bases, policy="static", quotas=(L2.n_blocks,)
        )
        shared = MultiLevelTextureCache(
            _config(tenancy), merged.address_space
        ).run_trace(merged)
        plain = MultiLevelTextureCache(
            _config(None), village_trace.address_space
        ).run_trace(village_trace)
        for s, p in zip(shared.frames, plain.frames):
            assert s.texel_reads == p.texel_reads
            assert s.l1_accesses == p.l1_accesses
            assert s.l1_misses == p.l1_misses
            assert s.l2 == p.l2
            assert s.tlb == p.tlb
            assert np.array_equal(s.tenants.texel_reads, [p.texel_reads])
