"""Fairness metrics, per-tenant stat vectors, and FrameCacheStats.merge."""

import numpy as np
import pytest

from repro.core.hierarchy import FrameCacheStats, HierarchyConfig, MultiLevelTextureCache
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig, L2FrameResult
from repro.tenancy import (
    TenancyConfig,
    jain_index,
    merge_traces,
    slowdowns,
    tenant_frame_costs_us,
    worst_tenant_p99_cost_us,
)
from repro.tenancy.metrics import frame_costs_us, tenant_matrix
from repro.tenancy.stats import TenantFrameStats
from repro.trace.trace import FrameTrace

L2 = L2CacheConfig(size_bytes=64 * 1024, l2_tile_texels=16)


def _config(tenancy=None):
    return HierarchyConfig(
        l1=L1CacheConfig(size_bytes=2048),
        l2=L2,
        tlb_entries=8,
        tenancy=tenancy,
    )


class TestJain:
    def test_equal_allocation_is_perfectly_fair(self):
        assert jain_index([3.0, 3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_one_hot_allocation_is_maximally_unfair(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_rejects_bad_vectors(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1.0, -0.5])


class TestTenantStats:
    def test_vectors_validated(self):
        with pytest.raises(ValueError, match="non-empty"):
            TenantFrameStats.zeros(2).__class__(
                **{
                    name: np.zeros(0, dtype=np.int64)
                    for name in (
                        "texel_reads l1_accesses l1_misses l2_accesses "
                        "l2_full_hits l2_partial_hits l2_full_misses "
                        "l2_evictions tlb_accesses tlb_hits"
                    ).split()
                }
            )
        zeros = TenantFrameStats.zeros(3)
        assert zeros.n_tenants == 3
        assert np.array_equal(zeros.host_downloads, [0, 0, 0])

    def test_sum_and_equality(self):
        a = TenantFrameStats.zeros(2)
        a.texel_reads += [5, 7]
        b = TenantFrameStats.zeros(2)
        b.texel_reads += [1, 2]
        total = TenantFrameStats.sum([a, b])
        assert np.array_equal(total.texel_reads, [6, 9])
        assert total != a
        assert TenantFrameStats.sum([a]) == a


class TestCosts:
    def test_tenant_costs_sum_to_single_tenant_costs(self, village_trace):
        merged, bases = merge_traces([village_trace])
        tenancy = TenancyConfig(tid_bases=bases)
        shared = MultiLevelTextureCache(
            _config(tenancy), merged.address_space
        ).run_trace(merged)
        plain = MultiLevelTextureCache(
            _config(), village_trace.address_space
        ).run_trace(village_trace)
        per_tenant = tenant_frame_costs_us(shared.frames)
        assert per_tenant.shape == (len(merged.frames), 1)
        assert np.allclose(per_tenant[:, 0], frame_costs_us(plain.frames))

    def test_slowdown_of_uncontended_tenant_is_one(self, village_trace):
        merged, bases = merge_traces([village_trace])
        tenancy = TenancyConfig(tid_bases=bases)
        shared = MultiLevelTextureCache(
            _config(tenancy), merged.address_space
        ).run_trace(merged)
        plain = MultiLevelTextureCache(
            _config(), village_trace.address_space
        ).run_trace(village_trace)
        sd = slowdowns(shared.frames, [plain.frames])
        assert sd == pytest.approx([1.0])
        assert worst_tenant_p99_cost_us(shared.frames) > 0

    def test_contended_tenants_slow_down(self, village_trace, city_trace):
        merged, bases = merge_traces([village_trace, city_trace])
        tenancy = TenancyConfig(tid_bases=bases)
        shared = MultiLevelTextureCache(
            _config(tenancy), merged.address_space
        ).run_trace(merged)
        isolated = [
            MultiLevelTextureCache(_config(), t.address_space).run_trace(t).frames
            for t in (village_trace, city_trace)
        ]
        sd = slowdowns(shared.frames, isolated)
        assert np.all(sd >= 1.0 - 1e-9)

    def test_matrix_validation(self, village_trace):
        plain = MultiLevelTextureCache(
            _config(), village_trace.address_space
        ).run_trace(village_trace)
        with pytest.raises(ValueError, match="no per-tenant stats"):
            tenant_matrix(plain.frames, "texel_reads")
        with pytest.raises(ValueError, match="unknown per-tenant field"):
            tenant_matrix(plain.frames, "wallclock")
        merged, bases = merge_traces([village_trace])
        shared = MultiLevelTextureCache(
            _config(TenancyConfig(tid_bases=bases)), merged.address_space
        ).run_trace(merged)
        with pytest.raises(ValueError, match="isolated runs"):
            slowdowns(shared.frames, [])


class TestFrameStatsMerge:
    def test_merged_partials_equal_whole_run(self, village_trace):
        """Satellite contract: merge() of split-stream partials is exact."""
        frame = village_trace.frames[0]
        whole = MultiLevelTextureCache(
            _config(), village_trace.address_space
        ).run_frame(frame)

        split_sim = MultiLevelTextureCache(
            _config(), village_trace.address_space
        )
        cuts = [0, len(frame.refs) // 3, len(frame.refs) // 2, len(frame.refs)]
        parts = [
            split_sim.run_frame(
                FrameTrace(
                    refs=frame.refs[a:b],
                    weights=frame.weights[a:b],
                    n_fragments=0,
                )
            )
            for a, b in zip(cuts, cuts[1:])
        ]
        assert FrameCacheStats.merge(parts) == whole

    def test_merge_rejects_empty_and_heterogeneous(self):
        with pytest.raises(ValueError, match="nothing to merge"):
            FrameCacheStats.merge([])
        with_l2 = FrameCacheStats(
            texel_reads=1,
            l1_accesses=1,
            l1_misses=1,
            l2=L2FrameResult(1, 0, 0, 1, 0),
        )
        without = FrameCacheStats(texel_reads=1, l1_accesses=1, l1_misses=0)
        with pytest.raises(ValueError, match="only some parts"):
            FrameCacheStats.merge([with_l2, without])
        ten = FrameCacheStats(texel_reads=1, l1_accesses=1, l1_misses=0)
        ten.tenants = TenantFrameStats.zeros(2)
        with pytest.raises(ValueError, match="only some parts"):
            FrameCacheStats.merge([ten, without])
