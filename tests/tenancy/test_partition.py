"""TenancyConfig validation and quota allocators."""

import pytest

from repro.core.l2_cache import L2CacheConfig
from repro.tenancy.partition import (
    POLICIES,
    PartitionedL2,
    PartitionedTLB,
    TenancyConfig,
    split_quota,
    static_quotas,
    utility_quotas,
    way_quotas,
)

L2_64K = L2CacheConfig(size_bytes=64 * 1024, l2_tile_texels=16)


class TestTenancyConfig:
    def test_valid_configs(self):
        assert TenancyConfig(tid_bases=(0, 3)).n_tenants == 2
        TenancyConfig(tid_bases=(0, 3), policy="static", quotas=(32, 32))
        TenancyConfig(tid_bases=(0, 3), policy="way", quotas=(4, 4), ways=8)
        TenancyConfig(tid_bases=(0, 3), tlb_quotas=(4, 4))

    def test_rejects_bad_tid_bases(self):
        with pytest.raises(ValueError, match="start at 0"):
            TenancyConfig(tid_bases=(1, 3))
        with pytest.raises(ValueError, match="start at 0"):
            TenancyConfig(tid_bases=())
        with pytest.raises(ValueError, match="strictly increasing"):
            TenancyConfig(tid_bases=(0, 3, 3))

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown tenancy policy"):
            TenancyConfig(tid_bases=(0, 3), policy="fair")

    def test_quota_presence_must_match_policy(self):
        with pytest.raises(ValueError, match="takes no quotas"):
            TenancyConfig(tid_bases=(0, 3), policy="none", quotas=(1, 1))
        with pytest.raises(ValueError, match="one quota per tenant"):
            TenancyConfig(tid_bases=(0, 3), policy="static")
        with pytest.raises(ValueError, match="one quota per tenant"):
            TenancyConfig(tid_bases=(0, 3), policy="static", quotas=(64,))
        with pytest.raises(ValueError, match=">= 1"):
            TenancyConfig(tid_bases=(0, 3), policy="static", quotas=(64, 0))

    def test_way_policy_bounds(self):
        with pytest.raises(ValueError, match="cannot each own a way"):
            TenancyConfig(
                tid_bases=(0, 1, 2), policy="way", quotas=(1, 1, 1), ways=2
            )
        with pytest.raises(ValueError, match="exceed the array"):
            TenancyConfig(
                tid_bases=(0, 3), policy="way", quotas=(5, 4), ways=8
            )

    def test_tlb_quota_validation(self):
        with pytest.raises(ValueError, match="tlb_quotas"):
            TenancyConfig(tid_bases=(0, 3), tlb_quotas=(4,))
        with pytest.raises(ValueError, match="tlb_quotas"):
            TenancyConfig(tid_bases=(0, 3), tlb_quotas=(4, 0))


class TestPartitionedComponents:
    def test_l2_requires_partitioning_policy(self, village_trace):
        tenancy = TenancyConfig(tid_bases=(0, 3))
        with pytest.raises(ValueError, match="partitioning policy"):
            PartitionedL2(L2_64K, village_trace.address_space, tenancy)

    def test_l2_block_quotas_must_fit(self, village_trace):
        tenancy = TenancyConfig(
            tid_bases=(0, 3), policy="static", quotas=(60, 60)
        )
        with pytest.raises(ValueError, match="exceed the L2"):
            PartitionedL2(L2_64K, village_trace.address_space, tenancy)

    def test_way_count_must_divide_blocks(self, village_trace):
        tenancy = TenancyConfig(
            tid_bases=(0, 3), policy="way", quotas=(3, 3), ways=7
        )
        with pytest.raises(ValueError, match="must divide"):
            PartitionedL2(L2_64K, village_trace.address_space, tenancy)

    def test_tlb_quotas_must_fit(self):
        tenancy = TenancyConfig(tid_bases=(0, 3), tlb_quotas=(6, 6))
        with pytest.raises(ValueError, match="exceed the 8 entries"):
            PartitionedTLB(8, "round_robin", tenancy)


class TestSplitQuota:
    def test_sums_exactly_and_respects_minimum(self):
        for total, weights in (
            (64, [1.0, 1.0]),
            (64, [3.0, 1.0]),
            (7, [1.0, 1.0, 1.0]),
            (100, [1e-6, 1.0]),
        ):
            shares = split_quota(total, weights)
            assert sum(shares) == total
            assert all(s >= 1 for s in shares)

    def test_proportional_and_deterministic(self):
        assert split_quota(64, [3.0, 1.0]) == (48, 16)
        assert split_quota(64, [3.0, 1.0]) == split_quota(64, [3.0, 1.0])

    def test_rejects_impossible_splits(self):
        with pytest.raises(ValueError, match="cannot split"):
            split_quota(2, [1.0, 1.0, 1.0])
        with pytest.raises(ValueError, match="positive"):
            split_quota(8, [1.0, -1.0])

    def test_helpers_split_blocks_and_ways(self):
        assert static_quotas(L2_64K, 2) == (32, 32)
        assert static_quotas(L2_64K, 2, [3.0, 1.0]) == (48, 16)
        assert way_quotas(8, 4) == (2, 2, 2, 2)
        assert way_quotas(8, 2, [5.0, 3.0]) == (5, 3)


class TestUtilityQuotas:
    def test_total_deterministic_and_positive(self, village_trace, city_trace):
        quotas = utility_quotas(
            [village_trace, city_trace], 2048, L2_64K
        )
        assert sum(quotas) == L2_64K.n_blocks
        assert all(q >= 1 for q in quotas)
        assert quotas == utility_quotas(
            [village_trace, city_trace], 2048, L2_64K
        )

    def test_starved_cache_still_splits_totally(self, village_trace):
        tiny = L2CacheConfig(size_bytes=2 * 1024, l2_tile_texels=16)
        quotas = utility_quotas([village_trace, village_trace], 2048, tiny)
        assert sum(quotas) == tiny.n_blocks
        assert all(q >= 1 for q in quotas)

    def test_rejects_more_tenants_than_blocks(self, village_trace):
        one_block = L2CacheConfig(size_bytes=1024, l2_tile_texels=16)
        with pytest.raises(ValueError, match="one block each"):
            utility_quotas([village_trace, village_trace], 2048, one_block)

    def test_policies_registry(self):
        assert POLICIES == ("none", "static", "way", "utility")
