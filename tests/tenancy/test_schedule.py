"""Seeded interleaving schedulers: determinism and order preservation."""

import numpy as np
import pytest

from repro.tenancy.address import tag_refs, tenant_of_refs
from repro.tenancy.schedule import SCHEDULES, merge_traces


def _per_tenant_streams(merged, bases, n):
    """Each tenant's refs in merged-stream order, per frame."""
    out = []
    for frame in merged.frames:
        owners = tenant_of_refs(frame.refs, bases)
        out.append([frame.refs[owners == t] for t in range(n)])
    return out


class TestMergeContracts:
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_deterministic(self, village_trace, city_trace, schedule):
        a, bases_a = merge_traces(
            [village_trace, city_trace], schedule=schedule, seed=7
        )
        b, bases_b = merge_traces(
            [village_trace, city_trace], schedule=schedule, seed=7
        )
        assert bases_a == bases_b
        assert a.meta.workload == b.meta.workload
        for fa, fb in zip(a.frames, b.frames):
            assert np.array_equal(fa.refs, fb.refs)
            assert np.array_equal(fa.weights, fb.weights)

    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_preserves_each_tenants_order(
        self, village_trace, city_trace, schedule
    ):
        traces = [village_trace, city_trace]
        merged, bases = merge_traces(traces, schedule=schedule, seed=3)
        streams = _per_tenant_streams(merged, bases, len(traces))
        for f, per_tenant in enumerate(streams):
            for t, trace in enumerate(traces):
                expected = tag_refs(trace.frames[f].refs, bases[t])
                assert np.array_equal(per_tenant[t], expected)

    def test_totals_preserved(self, village_trace, city_trace):
        merged, _ = merge_traces([village_trace, city_trace])
        per_frame = [
            village_trace.frames[f].weights.sum()
            + city_trace.frames[f].weights.sum()
            for f in range(len(merged.frames))
        ]
        assert [f.weights.sum() for f in merged.frames] == per_frame
        assert len(merged.textures) == len(village_trace.textures) + len(
            city_trace.textures
        )

    def test_rr_start_tenant_rotates_with_frame(self, village_trace):
        # Small chunks so every frame has chunks from both tenants.
        merged, bases = merge_traces(
            [village_trace, village_trace], schedule="rr", chunk_refs=64
        )
        firsts = [
            int(tenant_of_refs(f.refs[:1], bases)[0]) for f in merged.frames
        ]
        assert firsts[0] == 0
        assert len(set(firsts)) > 1  # the head tenant is not fixed

    def test_weighted_favours_heavy_tenant_early(self, village_trace):
        merged, bases = merge_traces(
            [village_trace, village_trace],
            schedule="weighted",
            weights=[8.0, 1.0],
            chunk_refs=64,
        )
        frame = merged.frames[0]
        owners = tenant_of_refs(frame.refs, bases)
        half = len(owners) // 2
        assert (owners[:half] == 0).mean() > (owners[half:] == 0).mean()

    def test_bursty_seed_changes_interleaving(self, village_trace, city_trace):
        a, bases = merge_traces(
            [village_trace, city_trace], schedule="bursty", seed=1, chunk_refs=64
        )
        b, _ = merge_traces(
            [village_trace, city_trace], schedule="bursty", seed=2, chunk_refs=64
        )
        different = any(
            not np.array_equal(fa.refs, fb.refs)
            for fa, fb in zip(a.frames, b.frames)
        )
        assert different


class TestValidation:
    def test_rejects_unknown_schedule(self, village_trace):
        with pytest.raises(ValueError, match="unknown schedule"):
            merge_traces([village_trace, village_trace], schedule="fifo")

    def test_rejects_empty_and_bad_chunks(self, village_trace):
        with pytest.raises(ValueError, match="at least one"):
            merge_traces([])
        with pytest.raises(ValueError, match="chunk_refs"):
            merge_traces([village_trace], chunk_refs=0)

    def test_rejects_mismatched_frame_counts(self, village_trace):
        from repro.trace.trace import Trace, TraceMeta

        short = Trace(
            meta=TraceMeta(
                workload=village_trace.meta.workload,
                width=village_trace.meta.width,
                height=village_trace.meta.height,
                filter_mode=village_trace.meta.filter_mode,
                n_frames=1,
            ),
            frames=village_trace.frames[:1],
            textures=village_trace.textures,
        )
        with pytest.raises(ValueError, match="equal frame counts"):
            merge_traces([village_trace, short])

    def test_rejects_bad_weights(self, village_trace, city_trace):
        with pytest.raises(ValueError, match="weights"):
            merge_traces([village_trace, city_trace], weights=[1.0])
        with pytest.raises(ValueError, match="positive"):
            merge_traces([village_trace, city_trace], weights=[1.0, 0.0])


class TestWorkloadString:
    def test_encodes_stream_determining_parameters(self, village_trace, city_trace):
        tags = {
            merge_traces([village_trace, city_trace], **kw)[0].meta.workload
            for kw in (
                {},
                {"schedule": "bursty"},
                {"seed": 1},
                {"weights": [2.0, 1.0]},
                {"chunk_refs": 256},
            )
        }
        assert len(tags) == 5  # every variation keys a distinct stream

    def test_explicit_workload_override(self, village_trace):
        merged, _ = merge_traces(
            [village_trace, village_trace], workload="pair"
        )
        assert merged.meta.workload == "pair"
