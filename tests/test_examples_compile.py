"""Smoke checks that every example script parses and has a main().

Running the examples renders animations (slow), so tests only verify the
scripts are syntactically valid, import only available modules at top
level, and expose the documented entry point.
"""

import ast
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[1] / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
class TestExamples:
    def test_parses(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

    def test_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source

    def test_imports_resolve(self, path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    __import__(node.module)


def test_expected_example_set():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "render_snapshots.py",
        "cache_designer.py",
        "texture_lifetime.py",
        "agp_budget.py",
        "locality_report.py",
    } <= names
