"""Unit tests for TextureManager."""

import pytest

from repro.texture.manager import TextureManager
from repro.texture.texture import Texture


@pytest.fixture
def manager():
    m = TextureManager()
    m.load(Texture("a", 64, 64, original_depth_bits=16))
    m.load(Texture("b", 32, 32, original_depth_bits=32))
    return m


class TestLifetime:
    def test_sequential_tids(self, manager):
        assert manager.load(Texture("c", 16, 16)) == 2

    def test_delete_retires_tid(self, manager):
        manager.delete(0)
        assert not manager.is_loaded(0)
        assert manager.is_loaded(1)
        # tid not reused
        assert manager.load(Texture("c", 16, 16)) == 2

    def test_double_delete_raises(self, manager):
        manager.delete(0)
        with pytest.raises(ValueError):
            manager.delete(0)

    def test_unknown_tid_raises(self, manager):
        with pytest.raises(IndexError):
            manager.delete(99)


class TestBinding:
    def test_bind_and_current(self, manager):
        manager.bind(1)
        assert manager.current_texture == 1

    def test_bind_deleted_raises(self, manager):
        manager.delete(1)
        with pytest.raises(ValueError):
            manager.bind(1)

    def test_delete_clears_current(self, manager):
        manager.bind(0)
        manager.delete(0)
        assert manager.current_texture is None


class TestAccounting:
    def test_host_bytes_respects_depth(self, manager):
        a = manager.texture(0)
        b = manager.texture(1)
        assert manager.loaded_host_bytes == a.host_bytes + b.host_bytes

    def test_delete_reduces_host_bytes(self, manager):
        before = manager.loaded_host_bytes
        manager.delete(0)
        assert manager.loaded_host_bytes == before - manager.texture(0).host_bytes

    def test_expanded_bytes_all_32bit(self, manager):
        assert manager.loaded_expanded_bytes == sum(
            t.expanded_bytes for t in manager
        )


class TestAddressSpace:
    def test_cached_until_load(self, manager):
        s1 = manager.address_space()
        assert manager.address_space() is s1
        manager.load(Texture("c", 16, 16))
        s2 = manager.address_space()
        assert s2 is not s1
        assert s2.texture_count == 3
