"""Unit tests for MIP pyramid geometry and construction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.texture.mipmap import build_mip_pyramid, mip_level_count, mip_level_dims


class TestLevelGeometry:
    @pytest.mark.parametrize(
        "w,h,n",
        [(1, 1, 1), (2, 2, 2), (256, 256, 9), (256, 64, 9), (1024, 1, 11), (3, 5, 3)],
    )
    def test_level_count(self, w, h, n):
        assert mip_level_count(w, h) == n

    def test_level_dims_halve(self):
        assert mip_level_dims(256, 128, 0) == (256, 128)
        assert mip_level_dims(256, 128, 1) == (128, 64)
        assert mip_level_dims(256, 128, 8) == (1, 1)

    def test_level_dims_clamp_at_one(self):
        assert mip_level_dims(16, 4, 3) == (2, 1)
        assert mip_level_dims(16, 4, 4) == (1, 1)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mip_level_count(0, 4)
        with pytest.raises(ValueError):
            mip_level_dims(4, 4, -1)

    @given(st.integers(1, 4096), st.integers(1, 4096))
    def test_property_last_level_is_1x1(self, w, h):
        n = mip_level_count(w, h)
        assert mip_level_dims(w, h, n - 1) == (1, 1)
        if n > 1:
            assert mip_level_dims(w, h, n - 2) != (1, 1)


class TestPyramidConstruction:
    def test_level_shapes(self):
        img = np.zeros((8, 16, 3), dtype=np.uint8)
        pyr = build_mip_pyramid(img)
        shapes = [lvl.shape[:2] for lvl in pyr]
        assert shapes == [(8, 16), (4, 8), (2, 4), (1, 2), (1, 1)]

    def test_box_filter_averages(self):
        img = np.array(
            [[[0], [4]], [[8], [12]]], dtype=np.float64
        )  # 2x2, single channel
        pyr = build_mip_pyramid(img)
        assert pyr[1].shape == (1, 1, 1)
        assert pyr[1][0, 0, 0] == pytest.approx(6.0)

    def test_constant_image_stays_constant(self):
        img = np.full((16, 16, 3), 77, dtype=np.uint8)
        for lvl in build_mip_pyramid(img):
            assert np.all(lvl == 77)

    def test_mean_preserved_for_pow2(self):
        rng = np.random.default_rng(1)
        img = rng.uniform(0, 255, size=(32, 32, 3))
        pyr = build_mip_pyramid(img)
        assert pyr[-1][0, 0].mean() == pytest.approx(img.mean(), rel=1e-9)

    def test_non_power_of_two(self):
        img = np.zeros((5, 3, 3))
        pyr = build_mip_pyramid(img)
        assert pyr[-1].shape[:2] == (1, 1)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            build_mip_pyramid(np.zeros((4, 4)))

    def test_dtype_preserved(self):
        img = np.zeros((4, 4, 3), dtype=np.uint8)
        assert all(lvl.dtype == np.uint8 for lvl in build_mip_pyramid(img))
