"""Unit tests for procedural texture generators."""

import numpy as np
import pytest

from repro.texture.procedural import (
    brick_texture,
    checker_texture,
    facade_texture,
    ground_texture,
    noise_texture,
    roof_texture,
    sky_texture,
)

ALL_GENERATORS = [
    lambda s: checker_texture(s),
    lambda s: brick_texture(s, seed=1),
    lambda s: facade_texture(s, seed=1),
    lambda s: noise_texture(s, seed=1),
    lambda s: ground_texture(s, seed=1),
    lambda s: roof_texture(s, seed=1),
    lambda s: sky_texture(s, seed=1),
]


@pytest.mark.parametrize("gen", ALL_GENERATORS)
@pytest.mark.parametrize("size", [16, 64])
def test_shape_and_dtype(gen, size):
    img = gen(size)
    assert img.shape == (size, size, 3)
    assert img.dtype == np.uint8


@pytest.mark.parametrize("gen", ALL_GENERATORS)
def test_deterministic(gen):
    assert np.array_equal(gen(32), gen(32))


def test_seeds_vary_facades():
    a = facade_texture(64, seed=1)
    b = facade_texture(64, seed=2)
    assert not np.array_equal(a, b)


def test_checker_cells():
    img = checker_texture(16, cells=2, color_a=(255, 255, 255), color_b=(0, 0, 0))
    assert np.all(img[0, 0] == 255)
    assert np.all(img[0, 8] == 0)
    assert np.all(img[8, 8] == 255)


def test_brick_has_mortar_and_brick():
    img = brick_texture(64, seed=0).astype(int)
    assert img.reshape(-1, 3).std(axis=0).max() > 10  # visible structure
