"""Unit tests for filtering footprints and color sampling."""

import numpy as np
import pytest

from repro.texture.procedural import checker_texture
from repro.texture.sampler import (
    FilterMode,
    footprint_tiles,
    sample_color,
    texel_reads_per_fragment,
)
from repro.texture.texture import Texture
from repro.texture.tiling import unpack_tile_refs


@pytest.fixture
def tex():
    return Texture("t", 64, 64)


class TestReadsPerFragment:
    def test_counts(self):
        assert texel_reads_per_fragment(FilterMode.POINT) == 1
        assert texel_reads_per_fragment(FilterMode.BILINEAR) == 4
        assert texel_reads_per_fragment(FilterMode.TRILINEAR) == 8


class TestPointFootprint:
    def test_one_ref_per_fragment(self, tex):
        refs = footprint_tiles(
            tex, 0, np.array([0.1, 0.9]), np.array([0.5, 0.5]), np.zeros(2), FilterMode.POINT
        )
        assert refs.shape == (2,)

    def test_tile_coordinates(self, tex):
        # u=0.5 at level 0 of a 64-wide texture is texel 32 -> 4x4 tile 8.
        refs = footprint_tiles(
            tex, 7, np.array([0.5]), np.array([0.25]), np.zeros(1), FilterMode.POINT
        )
        f = unpack_tile_refs(refs)
        assert int(f.tid[0]) == 7
        assert int(f.mip[0]) == 0
        assert int(f.tile_x[0]) == 8
        assert int(f.tile_y[0]) == 4

    def test_lod_selects_nearest_level(self, tex):
        refs = footprint_tiles(
            tex, 0, np.array([0.0, 0.0, 0.0]), np.zeros(3),
            np.array([0.4, 0.6, 9.0]), FilterMode.POINT,
        )
        f = unpack_tile_refs(refs)
        assert f.mip.tolist() == [0, 1, 6]  # 9.0 clamps to last level (64 -> 7 levels)

    def test_uv_wraps(self, tex):
        refs = footprint_tiles(
            tex, 0, np.array([1.25]), np.array([-0.25]), np.zeros(1), FilterMode.POINT
        )
        f = unpack_tile_refs(refs)
        assert int(f.tile_x[0]) == 4  # 0.25 * 64 = texel 16 -> tile 4
        assert int(f.tile_y[0]) == 12  # 0.75 * 64 = texel 48 -> tile 12


class TestBilinearFootprint:
    def test_four_refs_per_fragment(self, tex):
        refs = footprint_tiles(
            tex, 0, np.array([0.5]), np.array([0.5]), np.zeros(1), FilterMode.BILINEAR
        )
        assert refs.shape == (4,)

    def test_interior_footprint_single_tile(self, tex):
        # Texel center deep inside a tile: all 4 taps in the same 4x4 tile.
        u = (2 + 0.5) / 64  # texel 2 of tile 0
        refs = footprint_tiles(
            tex, 0, np.array([u]), np.array([u]), np.zeros(1), FilterMode.BILINEAR
        )
        assert len(np.unique(refs)) == 1

    def test_tile_boundary_footprint_spans_tiles(self, tex):
        # u exactly at a 4-texel boundary: taps straddle two tiles in x.
        u = 4.0 / 64
        refs = footprint_tiles(
            tex, 0, np.array([u]), np.array([0.6]), np.zeros(1), FilterMode.BILINEAR
        )
        f = unpack_tile_refs(refs)
        assert set(f.tile_x.tolist()) == {0, 1}

    def test_corner_footprint_spans_four_tiles(self, tex):
        u = 4.0 / 64
        refs = footprint_tiles(
            tex, 0, np.array([u]), np.array([u]), np.zeros(1), FilterMode.BILINEAR
        )
        assert len(np.unique(refs)) == 4


class TestTrilinearFootprint:
    def test_eight_refs_per_fragment(self, tex):
        refs = footprint_tiles(
            tex, 0, np.array([0.5]), np.array([0.5]), np.array([1.5]), FilterMode.TRILINEAR
        )
        assert refs.shape == (8,)

    def test_two_levels_touched(self, tex):
        refs = footprint_tiles(
            tex, 0, np.array([0.3]), np.array([0.3]), np.array([1.5]), FilterMode.TRILINEAR
        )
        f = unpack_tile_refs(refs)
        assert set(f.mip.tolist()) == {1, 2}

    def test_last_level_clamps(self, tex):
        refs = footprint_tiles(
            tex, 0, np.array([0.3]), np.array([0.3]), np.array([50.0]), FilterMode.TRILINEAR
        )
        f = unpack_tile_refs(refs)
        assert set(f.mip.tolist()) == {tex.level_count - 1}


class TestColorSampling:
    @pytest.fixture
    def checker(self):
        img = checker_texture(64, cells=2, color_a=(255, 255, 255), color_b=(0, 0, 0))
        return Texture("c", 64, 64, image=img)

    def test_point_sample_hits_cells(self, checker):
        c = sample_color(
            checker, np.array([0.1, 0.6]), np.array([0.1, 0.1]),
            np.zeros(2), FilterMode.POINT,
        )
        assert np.allclose(c[0], 255)
        assert np.allclose(c[1], 0)

    def test_bilinear_blends_at_boundary(self, checker):
        c = sample_color(
            checker, np.array([0.5]), np.array([0.25]), np.zeros(1), FilterMode.BILINEAR
        )
        assert 0 < c[0, 0] < 255

    def test_trilinear_at_high_lod_averages(self, checker):
        c = sample_color(
            checker, np.array([0.3]), np.array([0.3]),
            np.array([checker.level_count - 1.0]), FilterMode.TRILINEAR,
        )
        assert np.allclose(c[0], 127.5, atol=2.0)

    def test_shape(self, checker):
        c = sample_color(checker, np.zeros(5), np.zeros(5), np.zeros(5), FilterMode.POINT)
        assert c.shape == (5, 3)
