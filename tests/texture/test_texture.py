"""Unit tests for the Texture object."""

import numpy as np
import pytest

from repro.texture.texture import Texture


class TestValidation:
    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            Texture("bad", 0, 16)

    def test_rejects_odd_depth(self):
        with pytest.raises(ValueError):
            Texture("bad", 16, 16, original_depth_bits=12)

    def test_rejects_mismatched_image(self):
        with pytest.raises(ValueError):
            Texture("bad", 16, 16, image=np.zeros((8, 8, 3), dtype=np.uint8))


class TestGeometry:
    def test_level_count_and_dims(self):
        t = Texture("t", 256, 64)
        assert t.level_count == 9
        assert t.level_dims(0) == (256, 64)
        assert t.level_dims(6) == (4, 1)
        with pytest.raises(ValueError):
            t.level_dims(9)

    def test_texel_count_includes_pyramid(self):
        t = Texture("t", 4, 4)
        # 16 + 4 + 1
        assert t.texel_count == 21

    def test_square_pow2_texel_count_close_to_4_thirds(self):
        t = Texture("t", 256, 256)
        assert t.texel_count == pytest.approx(256 * 256 * 4 / 3, rel=0.01)


class TestMemoryAccounting:
    def test_host_bytes_uses_original_depth(self):
        t16 = Texture("t", 4, 4, original_depth_bits=16)
        t32 = Texture("t", 4, 4, original_depth_bits=32)
        assert t16.host_bytes == 21 * 2
        assert t32.host_bytes == 21 * 4

    def test_24_bit_rounds_to_3_bytes(self):
        assert Texture("t", 4, 4, original_depth_bits=24).host_bytes == 21 * 3

    def test_expanded_bytes_always_32bit(self):
        t = Texture("t", 4, 4, original_depth_bits=16)
        assert t.expanded_bytes == 21 * 4


class TestPyramid:
    def test_pyramid_requires_image(self):
        with pytest.raises(ValueError):
            Texture("t", 8, 8).pyramid()

    def test_pyramid_cached(self):
        t = Texture("t", 8, 8, image=np.zeros((8, 8, 3), dtype=np.uint8))
        assert t.pyramid() is t.pyramid()

    def test_pyramid_depth(self):
        t = Texture("t", 8, 8, image=np.zeros((8, 8, 3), dtype=np.uint8))
        assert len(t.pyramid()) == t.level_count
