"""Unit and property tests for hierarchical tiling and address translation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.texture.texture import Texture
from repro.texture.tiling import (
    AddressSpace,
    L1_TILE_TEXELS,
    MAX_MIP_LEVELS,
    TextureLayout,
    coarsen_refs,
    morton2,
    pack_tile_refs,
    unpack_tile_refs,
)


class TestPacking:
    def test_roundtrip_scalar(self):
        p = pack_tile_refs(5, 3, 100, 200)
        f = unpack_tile_refs(p)
        assert (int(f.tid), int(f.mip), int(f.tile_y), int(f.tile_x)) == (5, 3, 100, 200)

    @given(
        st.integers(0, 2**14 - 1),
        st.integers(0, 31),
        st.integers(0, 2**22 - 1),
        st.integers(0, 2**22 - 1),
    )
    @settings(max_examples=200)
    def test_property_roundtrip(self, tid, mip, ty, tx):
        f = unpack_tile_refs(pack_tile_refs(tid, mip, ty, tx))
        assert (int(f.tid), int(f.mip), int(f.tile_y), int(f.tile_x)) == (tid, mip, ty, tx)

    def test_packed_values_nonnegative(self):
        p = pack_tile_refs(2**14 - 1, 31, 2**22 - 1, 2**22 - 1)
        assert int(p) >= 0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            pack_tile_refs(2**14, 0, 0, 0)
        with pytest.raises(ValueError):
            pack_tile_refs(0, 32, 0, 0)
        with pytest.raises(ValueError):
            pack_tile_refs(0, 0, -1, 0)

    def test_vectorized_matches_scalar(self):
        tids = np.array([0, 1, 2])
        p = pack_tile_refs(tids, 1, 2, np.array([3, 4, 5]))
        for i in range(3):
            assert int(p[i]) == int(pack_tile_refs(int(tids[i]), 1, 2, 3 + i))

    def test_distinct_fields_give_distinct_packed(self):
        a = pack_tile_refs(1, 0, 0, 0)
        b = pack_tile_refs(0, 1, 0, 0)
        c = pack_tile_refs(0, 0, 1, 0)
        d = pack_tile_refs(0, 0, 0, 1)
        assert len({int(a), int(b), int(c), int(d)}) == 4


class TestCoarsen:
    def test_factor_one_is_identity(self):
        p = pack_tile_refs(1, 2, 7, 9)
        assert int(coarsen_refs(p, 1)) == int(p)

    def test_factor_four_shifts_coords(self):
        p = pack_tile_refs(1, 2, 7, 9)
        f = unpack_tile_refs(coarsen_refs(p, 4))
        assert (int(f.tile_y), int(f.tile_x)) == (1, 2)
        assert (int(f.tid), int(f.mip)) == (1, 2)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            coarsen_refs(pack_tile_refs(0, 0, 0, 0), 3)

    def test_coarsening_merges_neighbors(self):
        # 4x4 tiles (0,0),(1,0),(0,1),(1,1) all fall in 8x8 block (0,0).
        refs = pack_tile_refs(0, 0, np.array([0, 0, 1, 1]), np.array([0, 1, 0, 1]))
        assert len(np.unique(coarsen_refs(refs, 2))) == 1


class TestMorton:
    def test_interleaves_bits(self):
        assert int(morton2(np.int64(1), np.int64(0))) == 1
        assert int(morton2(np.int64(0), np.int64(1))) == 2
        assert int(morton2(np.int64(3), np.int64(3))) == 15

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    @settings(max_examples=100)
    def test_property_injective(self, x, y):
        m = int(morton2(np.int64(x), np.int64(y)))
        # De-interleave and compare.
        def extract(v):
            out = 0
            for i in range(16):
                out |= ((v >> (2 * i)) & 1) << i
            return out

        assert extract(m) == x
        assert extract(m >> 1) == y


class TestTextureLayout:
    def test_block_grid_64x64_16(self):
        layout = TextureLayout.for_texture(Texture("t", 64, 64), 16)
        # Levels: 64,32,16,8,4,2,1 -> block grids 4x4,2x2,1x1,1x1,...
        assert layout.blocks_w[:3] == (4, 2, 1)
        assert layout.total_blocks == 16 + 4 + 1 + 1 + 1 + 1 + 1

    def test_level_bases_are_cumulative(self):
        layout = TextureLayout.for_texture(Texture("t", 64, 64), 16)
        assert layout.level_base[0] == 0
        assert layout.level_base[1] == 16
        assert layout.level_base[2] == 20

    def test_sub_blocks_per_block(self):
        t = Texture("t", 64, 64)
        assert TextureLayout.for_texture(t, 8).sub_blocks_per_block == 4
        assert TextureLayout.for_texture(t, 16).sub_blocks_per_block == 16
        assert TextureLayout.for_texture(t, 32).sub_blocks_per_block == 64

    def test_rejects_bad_tile_size(self):
        t = Texture("t", 64, 64)
        with pytest.raises(ValueError):
            TextureLayout.for_texture(t, 12)
        with pytest.raises(ValueError):
            TextureLayout.for_texture(t, 2)

    def test_virtual_address_within_block(self):
        layout = TextureLayout.for_texture(Texture("t", 64, 64), 16)
        # Tile (1, 2) in 4x4 units is inside L2 block (0, 0); sub = 2*4+1.
        l2, l1 = layout.virtual_address(0, 1, 2)
        assert l2 == 0
        assert l1 == 9

    def test_virtual_address_block_stride(self):
        layout = TextureLayout.for_texture(Texture("t", 64, 64), 16)
        # Tile (4, 0) starts the second L2 block of row 0.
        l2, l1 = layout.virtual_address(0, 4, 0)
        assert l2 == 1
        assert l1 == 0

    def test_virtual_address_higher_level_offsets(self):
        layout = TextureLayout.for_texture(Texture("t", 64, 64), 16)
        l2, l1 = layout.virtual_address(1, 0, 0)
        assert l2 == 16  # first block of level 1

    @given(
        st.sampled_from([8, 16, 32]),
        st.integers(0, 15),
        st.integers(0, 15),
    )
    @settings(max_examples=100)
    def test_property_addresses_unique(self, l2_size, tx, ty):
        layout = TextureLayout.for_texture(Texture("t", 64, 64), l2_size)
        seen = set()
        for yy in range(16):
            for xx in range(16):
                seen.add(layout.virtual_address(0, xx, yy))
        assert len(seen) == 256  # every 4x4 tile of level 0 is unique


class TestAddressSpace:
    @pytest.fixture
    def space(self):
        return AddressSpace(
            [Texture("a", 64, 64), Texture("b", 128, 32), Texture("c", 16, 16)]
        )

    def test_total_l2_blocks_sums_textures(self, space):
        total = space.total_l2_blocks(16)
        expected = sum(
            TextureLayout.for_texture(t, 16).total_blocks for t in space.textures
        )
        assert total == expected

    def test_translate_l2_matches_scalar_layout(self, space):
        refs = pack_tile_refs(
            np.array([0, 1, 2, 1]),
            np.array([0, 1, 0, 0]),
            np.array([3, 1, 2, 0]),
            np.array([5, 2, 1, 7]),
        )
        tid, l2, l1 = space.translate_l2(refs, 16)
        for i in range(4):
            layout = space.layout(int(tid[i]), 16)
            f = unpack_tile_refs(refs[i : i + 1])
            el2, el1 = layout.virtual_address(
                int(f.mip[0]), int(f.tile_x[0]), int(f.tile_y[0])
            )
            assert (int(l2[i]), int(l1[i])) == (el2, el1)

    def test_global_l2_ids_disjoint_between_textures(self, space):
        # Same local tile coordinates in different textures must map to
        # different global ids.
        refs = pack_tile_refs(np.array([0, 1, 2]), 0, 0, 0)
        ids = space.global_l2_ids(refs, 16)
        assert len(np.unique(ids)) == 3

    def test_l2_extent_contiguous(self, space):
        starts = []
        for tid in range(3):
            tstart, tlen = space.l2_extent(tid, 16)
            starts.append((tstart, tlen))
        assert starts[0][0] == 0
        assert starts[1][0] == starts[0][0] + starts[0][1]
        assert starts[2][0] == starts[1][0] + starts[1][1]

    def test_global_ids_below_total(self, space):
        refs = pack_tile_refs(2, 2, 0, 0)
        ids = space.global_l2_ids(np.array([refs]), 16)
        assert 0 <= int(ids[0]) < space.total_l2_blocks(16)

    def test_l1_set_indices_in_range(self, space):
        refs = pack_tile_refs(
            np.zeros(100, dtype=np.int64),
            0,
            np.arange(100) // 10,
            np.arange(100) % 10,
        )
        sets = space.l1_set_indices(refs, 16)
        assert sets.min() >= 0
        assert sets.max() < 16

    def test_l1_set_indices_spread_neighbors(self, space):
        # Horizontally and vertically adjacent tiles must land in
        # different sets (the 6D-blocked property).
        r0 = pack_tile_refs(0, 0, 0, 0)
        r1 = pack_tile_refs(0, 0, 0, 1)
        r2 = pack_tile_refs(0, 0, 1, 0)
        sets = space.l1_set_indices(np.array([r0, r1, r2]), 64)
        assert len(set(sets.tolist())) == 3

    def test_l1_sets_require_power_of_two(self, space):
        with pytest.raises(ValueError):
            space.l1_set_indices(np.array([0]), 12)

    def test_wrap_texels(self, space):
        x, y = space.wrap_texels(np.array([0]), np.array([0]), np.array([65]), np.array([-1]))
        assert int(x[0]) == 1
        assert int(y[0]) == 63

    def test_too_many_mip_levels_rejected(self):
        # 2^22 wide would need 23 levels > MAX_MIP_LEVELS.
        big = Texture("big", 1 << 17, 1)
        with pytest.raises(ValueError):
            AddressSpace([big])

    def test_empty_space(self):
        space = AddressSpace([])
        assert space.texture_count == 0
        assert space.total_l1_tiles == 0
