"""Property tests for the address-translation machinery.

These pin down the invariants the cache simulators rely on: virtual
addresses are unique per tile, page-table extents partition the id space,
and the vectorized translation agrees with the per-texture scalar layout.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.texture.texture import Texture
from repro.texture.tiling import (
    AddressSpace,
    L1_TILE_TEXELS,
    TextureLayout,
    coarsen_refs,
    pack_tile_refs,
)

texture_sets = st.lists(
    st.tuples(st.sampled_from([16, 32, 64, 128]), st.sampled_from([16, 32, 64, 128])),
    min_size=1,
    max_size=5,
)
l2_sizes = st.sampled_from([8, 16, 32])


def build_space(dims):
    return AddressSpace([Texture(f"t{i}", w, h) for i, (w, h) in enumerate(dims)])


def all_tile_refs(space):
    """Every level-0..n 4x4-tile reference of every texture, as one array."""
    chunks = []
    for tid, tex in enumerate(space.textures):
        for m in range(tex.level_count):
            w, h = tex.level_dims(m)
            tw = -(-w // L1_TILE_TEXELS)
            th = -(-h // L1_TILE_TEXELS)
            ys, xs = np.mgrid[0:th, 0:tw]
            chunks.append(
                pack_tile_refs(tid, m, ys.ravel(), xs.ravel(), check=False)
            )
    return np.concatenate(chunks)


class TestGlobalIds:
    @given(texture_sets, l2_sizes)
    @settings(max_examples=30, deadline=None)
    def test_property_virtual_addresses_unique_per_l2_block(self, dims, l2):
        space = build_space(dims)
        refs = all_tile_refs(space)
        gids = space.global_l2_ids(refs, l2)
        _, _, subs = space.translate_l2(refs, l2)
        # (gid, sub) uniquely identifies each 4x4 tile.
        combined = gids * 1000 + subs
        assert len(np.unique(combined)) == len(refs)

    @given(texture_sets, l2_sizes)
    @settings(max_examples=30, deadline=None)
    def test_property_gids_cover_exactly_the_page_table(self, dims, l2):
        space = build_space(dims)
        refs = all_tile_refs(space)
        gids = np.unique(space.global_l2_ids(refs, l2))
        total = space.total_l2_blocks(l2)
        assert gids.min() == 0
        assert gids.max() == total - 1
        assert len(gids) == total  # every entry reachable, none wasted

    @given(texture_sets, l2_sizes)
    @settings(max_examples=30, deadline=None)
    def test_property_extents_partition_id_space(self, dims, l2):
        space = build_space(dims)
        edges = []
        for tid in range(space.texture_count):
            tstart, tlen = space.l2_extent(tid, l2)
            assert tlen == TextureLayout.for_texture(space.textures[tid], l2).total_blocks
            edges.append((tstart, tstart + tlen))
        edges.sort()
        assert edges[0][0] == 0
        for (a0, a1), (b0, _) in zip(edges, edges[1:]):
            assert a1 == b0  # contiguous, no gaps or overlaps

    @given(texture_sets, l2_sizes)
    @settings(max_examples=30, deadline=None)
    def test_property_subs_within_block_bounds(self, dims, l2):
        space = build_space(dims)
        refs = all_tile_refs(space)
        _, _, subs = space.translate_l2(refs, l2)
        per_block = (l2 // L1_TILE_TEXELS) ** 2
        assert subs.min() >= 0
        assert subs.max() < per_block


class TestCoarsenConsistency:
    @given(texture_sets, l2_sizes)
    @settings(max_examples=20, deadline=None)
    def test_property_same_l2_block_iff_same_coarsened_ref(self, dims, l2):
        space = build_space(dims)
        refs = all_tile_refs(space)
        gids = space.global_l2_ids(refs, l2)
        coarse = coarsen_refs(refs, l2 // L1_TILE_TEXELS)
        # Two tiles share an L2 block exactly when they share a coarse ref.
        order = np.argsort(gids, kind="stable")
        sorted_coarse = coarse[order]
        sorted_gids = gids[order]
        same_gid = sorted_gids[1:] == sorted_gids[:-1]
        same_coarse = sorted_coarse[1:] == sorted_coarse[:-1]
        assert np.array_equal(same_gid, same_coarse)


class TestSetIndexProperties:
    @given(texture_sets, st.sampled_from([8, 16, 64, 256]))
    @settings(max_examples=20, deadline=None)
    def test_property_sets_in_range_and_spread(self, dims, n_sets):
        space = build_space(dims)
        refs = all_tile_refs(space)
        sets = space.l1_set_indices(refs, n_sets)
        assert sets.min() >= 0
        assert sets.max() < n_sets
        if len(refs) >= 4 * n_sets:
            # A decent index function uses most sets on a dense tile sweep.
            assert len(np.unique(sets)) > n_sets // 2
