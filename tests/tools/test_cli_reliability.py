"""Reliability-facing CLI surfaces: trace_info --verify and simulate
--fault-rate."""

import numpy as np
import pytest

from repro.tools.render import main as render_main
from repro.tools.simulate import main as simulate_main
from repro.tools.trace_info import main as trace_info_main


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_rel") / "t.npz"
    rc = render_main(
        [
            "city", str(path),
            "--width", "96", "--height", "72", "--frames", "3",
            "--detail", "0.25", "--filter", "bilinear",
        ]
    )
    assert rc == 0
    return path


class TestTraceInfoVerify:
    def test_clean_trace_passes(self, trace_file, capsys):
        assert trace_info_main([str(trace_file), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "OK: all arrays verified" in out
        assert "format v3" in out
        assert "frame" in out  # per-frame integrity table

    def test_corrupt_trace_fails_nonzero(self, trace_file, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        raw = bytearray(trace_file.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        bad.write_bytes(bytes(raw))
        assert trace_info_main([str(bad), "--verify"]) == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out or "CORRUPT" in out

    def test_garbage_file_fails_nonzero(self, tmp_path, capsys):
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"not an archive at all")
        assert trace_info_main([str(junk), "--verify"]) == 1
        assert "CORRUPT" in capsys.readouterr().out


class TestSimulateFaults:
    def test_fault_rows_reported(self, trace_file, capsys):
        rc = simulate_main(
            [str(trace_file), "--l1-kb", "2", "--fault-rate", "0.05",
             "--max-retries", "2", "--fault-seed", "7"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "retried transfers" in out
        assert "effective AGP MB/frame" in out
        assert "degraded frames" in out

    def test_fault_free_run_has_no_fault_rows(self, trace_file, capsys):
        assert simulate_main([str(trace_file), "--l1-kb", "2"]) == 0
        out = capsys.readouterr().out
        assert "retried transfers" not in out

    def test_seeded_runs_identical(self, trace_file, capsys):
        args = [str(trace_file), "--l1-kb", "2", "--fault-rate", "0.1",
                "--fault-seed", "3"]
        assert simulate_main(args) == 0
        first = capsys.readouterr().out
        assert simulate_main(args) == 0
        second = capsys.readouterr().out
        # Identical modulo the wall-clock line.
        strip = lambda s: [l for l in s.splitlines() if "simulation time" not in l]
        assert strip(first) == strip(second)
