"""CLI surface for multi-tenancy: simulate flags and trace_info tenants."""

import argparse
import json

import pytest

from repro.errors import ConfigError
from repro.tools.render import main as render_main
from repro.tools.simulate import main as simulate_main, validate_tenant_flags
from repro.tools.trace_info import main as trace_info_main


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("tenancy_cli") / "city.npz"
    rc = render_main(
        [
            "city", str(path),
            "--width", "64", "--height", "48", "--frames", "2",
            "--detail", "0.2",
        ]
    )
    assert rc == 0
    return path


@pytest.fixture(scope="module")
def second_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("tenancy_cli") / "village.npz"
    rc = render_main(
        [
            "village", str(path),
            "--width", "64", "--height", "48", "--frames", "2",
            "--detail", "0.2",
        ]
    )
    assert rc == 0
    return path


class TestSimulateTenancy:
    def test_help_groups_flags(self, capsys):
        with pytest.raises(SystemExit) as exc:
            simulate_main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "virtual texturing" in out
        assert "multi-tenant serving" in out

    def test_tenancy_run_reports_per_tenant_rows(self, trace_file, capsys):
        rc = simulate_main(
            [
                str(trace_file), "--l1-kb", "2", "--l2-kb", "64",
                "--tlb", "8", "--tenants", "2", "--tenant-policy", "way",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tenant quotas" in out
        assert "tenant 0" in out and "tenant 1" in out
        assert "fairness (Jain" in out
        assert "worst-tenant P99" in out

    @pytest.mark.parametrize(
        "extra",
        [
            ["--tenant-schedule", "bursty"],  # needs --tenants >= 2
            ["--tenants", "2", "--vt"],
            ["--tenants", "2", "--tenant-policy", "static"],  # no --l2-kb
            ["--tenants", "2", "--tenant-weights", "1.0,oops"],
            ["--tenants", "3", "--tenant-policy", "way", "--tenant-ways", "2"],
        ],
    )
    def test_contradictory_combos_exit_with_usage_error(
        self, trace_file, capsys, extra
    ):
        with pytest.raises(SystemExit) as exc:
            simulate_main([str(trace_file), "--l1-kb", "2", *extra])
        assert exc.value.code == 2

    def test_validator_raises_typed_config_error(self):
        args = argparse.Namespace(
            tenants=2,
            tenant_policy="static",
            tenant_schedule="rr",
            tenant_weights=None,
            tenant_ways=8,
            tenant_seed=0,
            analytic=False,
            l2_kb=None,
        )
        with pytest.raises(ConfigError) as exc:
            validate_tenant_flags(args)
        assert "--tenant-policy" in str(exc.value)
        assert "--l2-kb" in str(exc.value)


class TestTraceInfoTenants:
    def test_table_lists_each_tenant(self, trace_file, second_trace, capsys):
        rc = trace_info_main(
            ["tenants", str(second_trace), str(trace_file)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "village" in out and "city" in out
        assert "footprint" in out

    def test_json_payload_parses(self, trace_file, capsys):
        rc = trace_info_main(
            ["tenants", str(trace_file), "--tenants", "3", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["tenants"]) == 3
        gid_ranges = [t["gid_range"] for t in payload["tenants"]]
        # Contiguous, non-overlapping tenant gid ranges.
        for (lo, hi), (lo2, _) in zip(gid_ranges, gid_ranges[1:]):
            assert lo < hi == lo2

    def test_clone_flag_requires_single_trace(
        self, trace_file, second_trace, capsys
    ):
        with pytest.raises(SystemExit) as exc:
            trace_info_main(
                [
                    "tenants", str(trace_file), str(second_trace),
                    "--tenants", "2",
                ]
            )
        assert exc.value.code == 2
