"""Tests for the command-line tools (render / trace_info / simulate)."""

import pytest

from repro.tools.render import main as render_main
from repro.tools.simulate import main as simulate_main
from repro.tools.trace_info import main as trace_info_main
from repro.trace.tracefile import load_trace


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "t.npz"
    rc = render_main(
        [
            "city", str(path),
            "--width", "96", "--height", "72", "--frames", "3",
            "--detail", "0.25", "--filter", "bilinear",
        ]
    )
    assert rc == 0
    return path


class TestRender:
    def test_writes_valid_trace(self, trace_file):
        trace = load_trace(trace_file)
        assert trace.meta.workload == "city"
        assert trace.meta.n_frames == 3
        assert trace.meta.filter_mode == "bilinear"

    def test_variant_flags(self, tmp_path):
        path = tmp_path / "z.npz"
        rc = render_main(
            [
                "city", str(path),
                "--width", "64", "--height", "48", "--frames", "2",
                "--detail", "0.2", "--z-first", "--tiled",
            ]
        )
        assert rc == 0
        trace = load_trace(path)
        assert trace.meta.workload == "city+zfirst+tiled"

    def test_unknown_workload_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            render_main(["metropolis", str(tmp_path / "x.npz")])


class TestTraceInfo:
    def test_summary_printed(self, trace_file, capsys):
        assert trace_info_main([str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "depth complexity" in out
        assert "workload=city" in out
        assert "reuse distances" in out

    def test_l2_tile_option(self, trace_file, capsys):
        assert trace_info_main([str(trace_file), "--l2-tile", "32"]) == 0
        assert "32x32 blocks" in capsys.readouterr().out


class TestSimulate:
    def test_pull_configuration(self, trace_file, capsys):
        assert simulate_main([str(trace_file), "--l1-kb", "2"]) == 0
        out = capsys.readouterr().out
        assert "L1 hit rate" in out
        assert "L2 full-hit rate" not in out

    def test_l2_configuration(self, trace_file, capsys):
        rc = simulate_main(
            [
                str(trace_file), "--l1-kb", "2", "--l2-kb", "64",
                "--tlb", "4", "--fps", "30",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "L2 full-hit rate" in out
        assert "TLB hit rate" in out
        assert "AGP MB/s @ 30 Hz" in out

    def test_policy_option(self, trace_file, capsys):
        rc = simulate_main(
            [str(trace_file), "--l1-kb", "2", "--l2-kb", "64",
             "--policy", "lru"]
        )
        assert rc == 0
