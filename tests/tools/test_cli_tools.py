"""Tests for the command-line tools (render / trace_info / simulate)."""

import pytest

from repro.tools.render import main as render_main
from repro.tools.simulate import main as simulate_main
from repro.tools.trace_info import main as trace_info_main
from repro.trace.tracefile import load_trace


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "t.npz"
    rc = render_main(
        [
            "city", str(path),
            "--width", "96", "--height", "72", "--frames", "3",
            "--detail", "0.25", "--filter", "bilinear",
        ]
    )
    assert rc == 0
    return path


class TestRender:
    def test_writes_valid_trace(self, trace_file):
        trace = load_trace(trace_file)
        assert trace.meta.workload == "city"
        assert trace.meta.n_frames == 3
        assert trace.meta.filter_mode == "bilinear"

    def test_variant_flags(self, tmp_path):
        path = tmp_path / "z.npz"
        rc = render_main(
            [
                "city", str(path),
                "--width", "64", "--height", "48", "--frames", "2",
                "--detail", "0.2", "--z-first", "--tiled",
            ]
        )
        assert rc == 0
        trace = load_trace(path)
        assert trace.meta.workload == "city+zfirst+tiled"

    def test_unknown_workload_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            render_main(["metropolis", str(tmp_path / "x.npz")])


class TestRenderJobs:
    ARGS = ["--width", "64", "--height", "48", "--frames", "3", "--detail", "0.2"]

    def test_jobs_renders_identical_trace(self, tmp_path):
        serial, parallel = tmp_path / "s.npz", tmp_path / "p.npz"
        assert render_main(["city", str(serial), *self.ARGS, "--jobs", "1"]) == 0
        assert render_main(["city", str(parallel), *self.ARGS, "--jobs", "2"]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_jobs_stream_output(self, tmp_path):
        out = tmp_path / "p.stream"
        rc = render_main(
            ["city", str(out), *self.ARGS, "--stream", "--jobs", "2"]
        )
        assert rc == 0
        assert (out / "manifest.json").exists()

    @pytest.mark.parametrize("bad", ["junk", "0", "-2", "1.5"])
    def test_bad_jobs_rejected_with_typed_message(self, bad, tmp_path, capsys):
        with pytest.raises(SystemExit):
            render_main(["city", str(tmp_path / "x.npz"), *self.ARGS,
                         "--jobs", bad])
        err = capsys.readouterr().err
        assert "--jobs" in err

    def test_bad_repro_jobs_env_rejected(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "junk")
        with pytest.raises(SystemExit):
            render_main(["city", str(tmp_path / "x.npz"), *self.ARGS])
        assert "REPRO_JOBS" in capsys.readouterr().err

    def test_env_default_used_when_flag_absent(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        out = tmp_path / "env.npz"
        assert render_main(["city", str(out), *self.ARGS]) == 0
        assert out.exists()


class TestTraceInfo:
    def test_summary_printed(self, trace_file, capsys):
        assert trace_info_main([str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "depth complexity" in out
        assert "workload=city" in out
        assert "reuse distances" in out

    def test_l2_tile_option(self, trace_file, capsys):
        assert trace_info_main([str(trace_file), "--l2-tile", "32"]) == 0
        assert "32x32 blocks" in capsys.readouterr().out


class TestSimulate:
    def test_pull_configuration(self, trace_file, capsys):
        assert simulate_main([str(trace_file), "--l1-kb", "2"]) == 0
        out = capsys.readouterr().out
        assert "L1 hit rate" in out
        assert "L2 full-hit rate" not in out

    def test_l2_configuration(self, trace_file, capsys):
        rc = simulate_main(
            [
                str(trace_file), "--l1-kb", "2", "--l2-kb", "64",
                "--tlb", "4", "--fps", "30",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "L2 full-hit rate" in out
        assert "TLB hit rate" in out
        assert "AGP MB/s @ 30 Hz" in out

    def test_policy_option(self, trace_file, capsys):
        rc = simulate_main(
            [str(trace_file), "--l1-kb", "2", "--l2-kb", "64",
             "--policy", "lru"]
        )
        assert rc == 0


class TestSimulateCheckpointing:
    BASE = ["--l1-kb", "2", "--l2-kb", "64", "--fault-rate", "0.02"]

    def _table(self, out: str) -> str:
        # Strip the wall-clock row; everything else must be identical.
        return "\n".join(
            line for line in out.splitlines() if "simulation time" not in line
        )

    def test_resume_output_matches_uninterrupted_run(
        self, trace_file, tmp_path, capsys
    ):
        ckpt = tmp_path / "run.ckpt"
        assert simulate_main([str(trace_file), *self.BASE]) == 0
        plain = self._table(capsys.readouterr().out)

        args = [str(trace_file), *self.BASE, "--checkpoint", str(ckpt),
                "--checkpoint-every", "1"]
        assert simulate_main(args) == 0
        assert self._table(capsys.readouterr().out) == plain
        assert ckpt.is_file()  # frame 2 of 3 is still on disk

        rc = simulate_main(
            [str(trace_file), *self.BASE, "--resume-from", str(ckpt)]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "resuming from" in captured.err
        assert self._table(captured.out) == plain

    def test_corrupt_checkpoint_restarts_from_scratch(
        self, trace_file, tmp_path, capsys
    ):
        from repro.errors import CorruptCheckpointWarning
        from repro.reliability.chaos import corrupt_file

        ckpt = tmp_path / "run.ckpt"
        args = [str(trace_file), *self.BASE, "--checkpoint", str(ckpt),
                "--checkpoint-every", "1"]
        assert simulate_main(args) == 0
        plain = self._table(capsys.readouterr().out)
        corrupt_file(ckpt, seed=1)
        with pytest.warns(CorruptCheckpointWarning):
            rc = simulate_main(
                [str(trace_file), *self.BASE, "--resume-from", str(ckpt)]
            )
        assert rc == 0
        captured = capsys.readouterr()
        assert "restarting from scratch" in captured.err
        assert self._table(captured.out) == plain

    def test_flag_validation(self, trace_file, tmp_path):
        with pytest.raises(SystemExit):
            simulate_main(
                [str(trace_file), "--resume-from", str(tmp_path / "absent.ckpt")]
            )
        with pytest.raises(SystemExit):
            simulate_main([str(trace_file), "--checkpoint-every", "2"])
        with pytest.raises(SystemExit):
            simulate_main(
                [str(trace_file), "--analytic", "--checkpoint",
                 str(tmp_path / "c.ckpt")]
            )


class TestSimulateVt:
    def test_vt_rows_reported(self, trace_file, capsys):
        rc = simulate_main(
            [
                str(trace_file), "--l1-kb", "2", "--vt",
                "--vt-pages", "64", "--vt-budget-us", "800",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "VT page fetches" in out
        assert "VT pages degraded" in out
        assert "VT stall-free rate" in out

    def test_faulty_vt_still_stall_free(self, trace_file, capsys):
        rc = simulate_main(
            [
                str(trace_file), "--l1-kb", "2", "--vt",
                "--vt-fault-rate", "0.5", "--vt-budget-us", "500",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        row = next(l for l in out.splitlines() if "VT stall-free rate" in l)
        assert row.rstrip().endswith("1.00")

    def test_vt_runs_deterministically(self, trace_file, capsys):
        args = [
            str(trace_file), "--l1-kb", "2", "--vt",
            "--vt-fault-rate", "0.3", "--vt-budget-us", "600",
        ]
        assert simulate_main(args) == 0
        first = capsys.readouterr().out
        assert simulate_main(args) == 0
        second = capsys.readouterr().out
        # Everything except the wall-clock row must match exactly.
        strip = lambda out: [
            line for line in out.splitlines() if "time" not in line
        ]
        assert strip(first) == strip(second)

    def test_vt_flags_require_vt_mode(self, trace_file):
        with pytest.raises(SystemExit):
            simulate_main([str(trace_file), "--vt-pages", "64"])
        with pytest.raises(SystemExit):
            simulate_main([str(trace_file), "--vt-budget-us", "100"])

    def test_vt_rejects_analytic_and_bad_rate(self, trace_file):
        with pytest.raises(SystemExit):
            simulate_main([str(trace_file), "--vt", "--analytic"])
        with pytest.raises(SystemExit):
            simulate_main(
                [str(trace_file), "--vt", "--vt-fault-rate", "1.5"]
            )


class TestTraceInfoJson:
    def test_json_summary(self, trace_file, capsys):
        import json

        assert trace_info_main([str(trace_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "city"
        assert payload["frames"] == 3
        assert payload["stats"]["depth_complexity"] > 0
        totals = payload["locality"]["class_totals"]
        assert set(totals) == {
            "run", "intra_object", "intra_frame",
            "inter_frame", "distant", "compulsory",
        }
        assert sum(totals.values()) > 0
        assert len(payload["locality"]["per_frame"]) == 3
        assert payload["frame_reuse_distances"]


class TestTraceInfoMrc:
    def test_table_output(self, trace_file, capsys):
        rc = trace_info_main(["mrc", str(trace_file), "--l1-sizes", "2,8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "miss rate" in out
        assert "2.0 KB" in out and "8.0 KB" in out

    def test_json_output(self, trace_file, capsys):
        import json

        rc = trace_info_main(
            ["mrc", str(trace_file), "--l1-sizes", "2,4", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        sizes = [p["size_bytes"] for p in payload["points"]]
        assert sizes == [2048, 4096]
        rates = [p["miss_rate"] for p in payload["points"]]
        assert rates[0] >= rates[1] >= 0

    def test_bad_sizes_rejected(self, trace_file):
        with pytest.raises(SystemExit):
            trace_info_main(["mrc", str(trace_file), "--l1-sizes", "two"])

    def test_bad_sample_rejected(self, trace_file):
        with pytest.raises(SystemExit):
            trace_info_main(["mrc", str(trace_file), "--sample", "0"])


class TestSimulateAnalytic:
    def test_l1_matches_transaction_sim(self, trace_file, capsys):
        assert simulate_main([str(trace_file), "--l1-kb", "2"]) == 0
        sim_out = capsys.readouterr().out
        assert simulate_main([str(trace_file), "--l1-kb", "2", "--analytic"]) == 0
        ana_out = capsys.readouterr().out

        def grab(out, label):
            for line in out.splitlines():
                if line.startswith(label):
                    return line.split()[-1]
            raise AssertionError(f"{label!r} not in output")

        assert grab(ana_out, "L1 hit rate (analytic)") == grab(sim_out, "L1 hit rate")
        assert grab(ana_out, "L1 misses (analytic)") == grab(sim_out, "L1 misses")

    def test_l2_reports_opt_bound(self, trace_file, capsys):
        rc = simulate_main(
            [str(trace_file), "--l1-kb", "2", "--l2-kb", "64", "--analytic"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "analytic LRU" in out
        assert "OPT bound" in out

    def test_belady_requires_analytic(self, trace_file):
        with pytest.raises(SystemExit):
            simulate_main(
                [str(trace_file), "--l1-kb", "2", "--l2-kb", "64",
                 "--policy", "belady"]
            )

    def test_analytic_rejects_tlb_and_faults(self, trace_file):
        with pytest.raises(SystemExit):
            simulate_main(
                [str(trace_file), "--l1-kb", "2", "--l2-kb", "64",
                 "--analytic", "--tlb", "4"]
            )
        with pytest.raises(SystemExit):
            simulate_main(
                [str(trace_file), "--l1-kb", "2", "--analytic",
                 "--fault-rate", "0.1"]
            )
