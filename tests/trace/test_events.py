"""Unit and property tests for reference-stream compression."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.events import collapse_runs


class TestCollapseRuns:
    def test_empty(self):
        values, weights = collapse_runs(np.empty(0, dtype=np.int64))
        assert len(values) == 0
        assert len(weights) == 0

    def test_single_run(self):
        values, weights = collapse_runs(np.array([7, 7, 7]))
        assert values.tolist() == [7]
        assert weights.tolist() == [3]

    def test_alternating_not_collapsed(self):
        values, weights = collapse_runs(np.array([1, 2, 1, 2]))
        assert values.tolist() == [1, 2, 1, 2]
        assert weights.tolist() == [1, 1, 1, 1]

    def test_mixed(self):
        values, weights = collapse_runs(np.array([5, 5, 9, 9, 9, 5]))
        assert values.tolist() == [5, 9, 5]
        assert weights.tolist() == [2, 3, 1]

    @given(st.lists(st.integers(0, 5), max_size=300))
    @settings(max_examples=200)
    def test_property_reconstruction(self, xs):
        refs = np.array(xs, dtype=np.int64)
        values, weights = collapse_runs(refs)
        rebuilt = np.repeat(values, weights)
        assert rebuilt.tolist() == xs

    @given(st.lists(st.integers(0, 5), max_size=300))
    @settings(max_examples=200)
    def test_property_no_adjacent_duplicates(self, xs):
        values, _ = collapse_runs(np.array(xs, dtype=np.int64))
        assert not np.any(values[1:] == values[:-1])

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=300))
    @settings(max_examples=100)
    def test_property_weights_sum(self, xs):
        _, weights = collapse_runs(np.array(xs, dtype=np.int64))
        assert int(weights.sum()) == len(xs)
        assert np.all(weights >= 1)
