"""Tests for the §4 locality-class decomposition."""

import numpy as np
import pytest

from repro.texture.texture import Texture
from repro.texture.tiling import pack_tile_refs
from repro.trace.locality import CLASSES, classify_locality, locality_fractions
from repro.trace.trace import FrameTrace, Trace, TraceMeta


def make_trace(frame_specs):
    """frame_specs: list of (refs_tiles, weights, object_offsets).

    refs_tiles are (tid, mip, ty, tx) tuples.
    """
    textures = [Texture("a", 256, 256)]
    frames = []
    for tiles, weights, offsets in frame_specs:
        if tiles:
            tids, mips, tys, txs = zip(*tiles)
            refs = pack_tile_refs(np.array(tids), np.array(mips),
                                  np.array(tys), np.array(txs))
        else:
            refs = np.empty(0, dtype=np.int64)
        frames.append(
            FrameTrace(
                refs=refs,
                weights=np.array(weights, dtype=np.int64),
                n_fragments=sum(weights),
                object_offsets=np.array(offsets, dtype=np.int64),
            )
        )
    meta = TraceMeta("t", 8, 8, "point", len(frames))
    return Trace(meta=meta, frames=frames, textures=textures)


BLOCK_A = (0, 0, 0, 0)   # tile in L2 block 0
BLOCK_A2 = (0, 0, 1, 1)  # different tile, same 16x16 block
BLOCK_B = (0, 0, 0, 4)   # different 16x16 block


class TestClassification:
    def test_compulsory_first_touch(self):
        t = make_trace([([BLOCK_A], [1], [0])])
        b = classify_locality(t, 16)
        assert b.counts["compulsory"].tolist() == [1]
        assert b.totals()["run"] == 0

    def test_run_counts_collapsed_weight(self):
        t = make_trace([([BLOCK_A], [5], [0])])
        b = classify_locality(t, 16)
        assert b.totals()["run"] == 4
        assert b.totals()["compulsory"] == 1

    def test_intra_object_reuse(self):
        # Two tiles of the same block within one object.
        t = make_trace([([BLOCK_A, BLOCK_A2], [1, 1], [0])])
        b = classify_locality(t, 16)
        assert b.totals()["intra_object"] == 1
        assert b.totals()["compulsory"] == 1

    def test_intra_frame_cross_object_reuse(self):
        # Same block touched by two different objects in one frame.
        t = make_trace([([BLOCK_A, BLOCK_A2], [1, 1], [0, 1])])
        b = classify_locality(t, 16)
        assert b.totals()["intra_frame"] == 1
        assert b.totals()["intra_object"] == 0

    def test_inter_frame_reuse(self):
        t = make_trace([
            ([BLOCK_A], [1], [0]),
            ([BLOCK_A], [1], [0]),
        ])
        b = classify_locality(t, 16)
        assert b.counts["inter_frame"].tolist() == [0, 1]
        assert b.counts["compulsory"].tolist() == [1, 0]

    def test_distant_reuse(self):
        t = make_trace([
            ([BLOCK_A], [1], [0]),
            ([BLOCK_B], [1], [0]),
            ([BLOCK_A], [1], [0]),  # last seen two frames ago
        ])
        b = classify_locality(t, 16)
        assert b.counts["distant"].tolist() == [0, 0, 1]

    def test_columns_sum_to_texel_reads(self):
        t = make_trace([
            ([BLOCK_A, BLOCK_A2, BLOCK_B], [3, 2, 1], [0, 2]),
            ([BLOCK_A, BLOCK_B], [4, 1], [0]),
        ])
        b = classify_locality(t, 16)
        for fi, frame in enumerate(t.frames):
            total = sum(b.counts[name][fi] for name in CLASSES)
            assert total == frame.texel_reads

    def test_granularity_changes_classes(self):
        # At 4x4 granularity BLOCK_A and BLOCK_A2 are different blocks.
        t = make_trace([([BLOCK_A, BLOCK_A2], [1, 1], [0])])
        fine = classify_locality(t, 4)
        assert fine.totals()["compulsory"] == 2
        coarse = classify_locality(t, 16)
        assert coarse.totals()["compulsory"] == 1

    def test_missing_offsets_raises(self):
        textures = [Texture("a", 256, 256)]
        refs = pack_tile_refs(0, 0, np.array([0]), np.array([0]))
        frames = [FrameTrace(refs, np.ones(1, dtype=np.int64), 1)]
        t = Trace(TraceMeta("t", 8, 8, "point", 1), frames, textures)
        with pytest.raises(ValueError):
            classify_locality(t)

    def test_fractions_sum_to_one(self):
        t = make_trace([
            ([BLOCK_A, BLOCK_A2, BLOCK_B], [3, 2, 1], [0, 2]),
            ([BLOCK_A, BLOCK_B], [4, 1], [0]),
        ])
        fr = locality_fractions(t, 16)
        assert sum(fr.values()) == pytest.approx(1.0)


class TestRenderedTraceIntegration:
    def test_pipeline_traces_classify(self):
        from repro.experiments.config import Scale
        from repro.experiments.traces import render_trace
        from repro.texture.sampler import FilterMode

        micro = Scale(width=64, height=48, frames=3, detail=0.2, name="micro")
        trace = render_trace("village", micro, FilterMode.POINT)
        b = classify_locality(trace, 16)
        # Locality-bearing rendering: the bulk of reads are run/intra-object.
        fr = b.fractions()
        assert fr["run"] + fr["intra_object"] > 0.5
        assert sum(fr.values()) == pytest.approx(1.0)
