"""Unit tests for FrameTrace.object_offsets / object_ids."""

import numpy as np
import pytest

from repro.trace.trace import FrameTrace


def frame(refs, offsets):
    refs = np.asarray(refs, dtype=np.int64)
    return FrameTrace(
        refs=refs,
        weights=np.ones(len(refs), dtype=np.int64),
        n_fragments=len(refs),
        object_offsets=np.asarray(offsets, dtype=np.int64),
    )


class TestObjectOffsets:
    def test_single_object(self):
        f = frame([1, 2, 3], [0])
        assert f.object_ids().tolist() == [0, 0, 0]

    def test_multiple_objects(self):
        f = frame([1, 2, 3, 4, 5], [0, 2, 4])
        assert f.object_ids().tolist() == [0, 0, 1, 1, 2]

    def test_empty_stream(self):
        f = frame([], [])
        assert f.object_ids().tolist() == []

    def test_object_with_empty_tail(self):
        # A final offset equal to the stream length marks an empty object.
        f = frame([1, 2], [0, 2])
        assert f.object_ids().tolist() == [0, 0]

    def test_none_offsets_gives_none(self):
        f = FrameTrace(
            refs=np.array([1], dtype=np.int64),
            weights=np.ones(1, dtype=np.int64),
            n_fragments=1,
        )
        assert f.object_ids() is None

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            frame([1, 2], [1])  # must start at 0
        with pytest.raises(ValueError):
            frame([1, 2], [0, 5])  # beyond the stream
        with pytest.raises(ValueError):
            frame([1, 2, 3], [0, 2, 1])  # decreasing
