"""Tests for workload statistics (Table 1) and minimum bandwidth (Fig 6)."""

import numpy as np
import pytest

from repro.texture.texture import Texture
from repro.texture.tiling import pack_tile_refs
from repro.trace.bandwidth import min_l1_bandwidth_curves
from repro.trace.stats import frame_depth_complexity, workload_stats
from repro.trace.trace import FrameTrace, Trace, TraceMeta


def simple_trace(n_fragments, tiles_per_frame, n_frames=2, pixels=(16, 16)):
    textures = [Texture("a", 256, 256)]
    frames = []
    for _ in range(n_frames):
        xs = np.arange(tiles_per_frame, dtype=np.int64)
        refs = pack_tile_refs(0, 0, xs // 8, xs % 8)
        frames.append(
            FrameTrace(refs, np.ones(len(refs), dtype=np.int64), n_fragments)
        )
    meta = TraceMeta("t", pixels[0], pixels[1], "point", n_frames)
    return Trace(meta=meta, frames=frames, textures=textures)


class TestDepthComplexity:
    def test_fragments_over_pixels(self):
        t = simple_trace(n_fragments=512, tiles_per_frame=4)
        assert frame_depth_complexity(t).tolist() == [2.0, 2.0]


class TestWorkloadStats:
    def test_utilization_definition(self):
        # 256 fragments over one 16x16 block: B_min = 1, B = 1 -> util 1.
        t = simple_trace(n_fragments=256, tiles_per_frame=1)
        s = workload_stats(t, 16)
        assert s.block_utilization == pytest.approx(1.0)

    def test_reuse_raises_utilization(self):
        # Twice the fragments on the same single block: util = 2.
        t = simple_trace(n_fragments=512, tiles_per_frame=1)
        s = workload_stats(t, 16)
        assert s.block_utilization == pytest.approx(2.0)

    def test_expected_w_formula(self):
        t = simple_trace(n_fragments=512, tiles_per_frame=1, pixels=(16, 16))
        s = workload_stats(t, 16)
        expected = (256 * s.depth_complexity * 4) / s.block_utilization
        assert s.expected_working_set_bytes == pytest.approx(expected)

    def test_empty_frames_do_not_crash(self):
        textures = [Texture("a", 64, 64)]
        frames = [FrameTrace(np.empty(0, dtype=np.int64),
                             np.empty(0, dtype=np.int64), 0)]
        t = Trace(TraceMeta("t", 8, 8, "point", 1), frames, textures)
        s = workload_stats(t)
        assert s.block_utilization == 0.0
        assert s.expected_working_set_bytes == 0.0


class TestMinBandwidth:
    def test_total_counts_each_tile_once(self):
        t = simple_trace(n_fragments=64, tiles_per_frame=4)
        total, new = min_l1_bandwidth_curves(t, 4)
        assert total.tolist() == [4 * 64, 4 * 64]
        assert new.tolist() == [4 * 64, 0]  # identical frames: nothing new

    def test_8x8_tiles_cost_more_per_tile(self):
        t = simple_trace(n_fragments=64, tiles_per_frame=1)
        total8, _ = min_l1_bandwidth_curves(t, 8)
        total4, _ = min_l1_bandwidth_curves(t, 4)
        assert total8[0] == 8 * 8 * 4
        assert total4[0] == 4 * 4 * 4

    def test_8x8_merges_adjacent_4x4(self):
        # Tiles (0,0) and (1,0) in 4x4 units share one 8x8 tile.
        textures = [Texture("a", 256, 256)]
        refs = pack_tile_refs(0, 0, np.array([0, 0]), np.array([0, 1]))
        frames = [FrameTrace(refs, np.ones(2, dtype=np.int64), 2)]
        t = Trace(TraceMeta("t", 8, 8, "point", 1), frames, textures)
        total8, _ = min_l1_bandwidth_curves(t, 8)
        total4, _ = min_l1_bandwidth_curves(t, 4)
        assert total8[0] == 256  # one 8x8 tile
        assert total4[0] == 128  # two 4x4 tiles
