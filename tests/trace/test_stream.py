"""Streamed trace format: round-trip fidelity, corruption handling, laziness."""

import json

import numpy as np
import pytest

from repro.core.hierarchy import HierarchyConfig, MultiLevelTextureCache
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig
from repro.errors import TraceCorruptionError, TraceFormatError
from repro.tenancy.schedule import merge_traces
from repro.texture.texture import Texture
from repro.trace.stream import (
    DEFAULT_CHUNK_REFS,
    StreamingTrace,
    StreamTraceWriter,
    open_trace,
    save_stream,
)
from repro.trace.trace import FrameTrace, Trace, TraceMeta
from repro.trace.tracefile import save_trace


def make_trace(n_frames=4, seed=0, with_offsets=True, frame_len=300):
    """A synthetic trace with uneven frames (some chunk-spanning).

    Refs are valid packed tile references into the trace's own texture set
    (texture 0, 64x64, level 0) so the cache hierarchy can replay them.
    """
    from repro.texture.tiling import L1_TILE_TEXELS, pack_tile_refs

    tiles = 64 // L1_TILE_TEXELS
    rng = np.random.default_rng(seed)
    frames = []
    for i in range(n_frames):
        n = int(frame_len * (0.5 + i)) if i % 2 else frame_len // 3
        refs = pack_tile_refs(
            0,
            0,
            rng.integers(0, tiles, size=n),
            rng.integers(0, tiles, size=n),
        )
        weights = rng.integers(1, 9, size=n, dtype=np.int64)
        offsets = (
            np.array([0, n // 2], dtype=np.int64)
            if with_offsets and i % 2 == 0
            else None
        )
        frames.append(
            FrameTrace(refs=refs, weights=weights, n_fragments=n * 2,
                       object_offsets=offsets)
        )
    meta = TraceMeta(workload="synthetic", width=64, height=48,
                     filter_mode="bilinear", n_frames=n_frames)
    textures = [Texture("a", 64, 64), Texture("b", 128, 32)]
    return Trace(meta=meta, frames=frames, textures=textures)


def frames_equal(a: FrameTrace, b: FrameTrace):
    assert np.array_equal(a.refs, b.refs)
    assert a.refs.dtype == b.refs.dtype == np.int64
    assert np.array_equal(a.weights, b.weights)
    assert a.n_fragments == b.n_fragments
    if a.object_offsets is None:
        assert b.object_offsets is None
    else:
        assert np.array_equal(a.object_offsets, b.object_offsets)


class TestRoundTrip:
    @pytest.mark.parametrize("chunk_refs", [64, 257, DEFAULT_CHUNK_REFS])
    def test_round_trip_identical(self, tmp_path, chunk_refs):
        trace = make_trace()
        path = tmp_path / "t.stream"
        save_stream(trace, path, chunk_refs=chunk_refs)
        st = StreamingTrace(path)
        assert st.meta == trace.meta
        assert [t.name for t in st.textures] == [t.name for t in trace.textures]
        assert len(st.frames) == len(trace.frames)
        for a, b in zip(trace.frames, st.frames):
            frames_equal(a, b)
        # Negative indexing and iteration behave like a list.
        frames_equal(trace.frames[-1], st.frames[-1])
        assert len(list(st.frames)) == len(trace.frames)

    def test_fingerprint_matches_materialized(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.stream"
        save_stream(trace, path, chunk_refs=128)
        st = StreamingTrace(path)
        assert st.fingerprint() == trace.fingerprint()
        assert st.total_texel_reads() == trace.total_texel_reads()
        assert st.pixels_per_frame == trace.pixels_per_frame
        m = st.materialize()
        assert m.fingerprint() == trace.fingerprint()

    def test_writer_streams_frame_by_frame(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.stream"
        with StreamTraceWriter(path, trace.meta, trace.textures,
                               chunk_refs=100) as w:
            for f in trace.frames:
                w.append_frame(f)
        st = StreamingTrace(path)
        for a, b in zip(trace.frames, st.frames):
            frames_equal(a, b)

    def test_empty_frames_round_trip(self, tmp_path):
        meta = TraceMeta(workload="w", width=8, height=8,
                         filter_mode="point", n_frames=2)
        empty = FrameTrace(refs=np.empty(0, dtype=np.int64),
                           weights=np.empty(0, dtype=np.int64), n_fragments=0)
        trace = Trace(meta=meta, frames=[empty, empty],
                      textures=[Texture("t", 16, 16)])
        path = tmp_path / "t.stream"
        save_stream(trace, path)
        st = StreamingTrace(path)
        for f in st.frames:
            assert len(f.refs) == 0 and f.n_fragments == 0
        assert st.fingerprint() == trace.fingerprint()

    def test_frame_count_mismatch_rejected(self, tmp_path):
        trace = make_trace(n_frames=3)
        path = tmp_path / "t.stream"
        w = StreamTraceWriter(path, trace.meta, trace.textures)
        w.append_frame(trace.frames[0])
        with pytest.raises(ValueError, match="declares 3"):
            w.close()
        assert not path.exists()

    def test_abort_leaves_no_output(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.stream"
        with pytest.raises(RuntimeError):
            with StreamTraceWriter(path, trace.meta, trace.textures) as w:
                w.append_frame(trace.frames[0])
                raise RuntimeError("render failed")
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # tmp dir cleaned up

    def test_rewrite_replaces_atomically(self, tmp_path):
        path = tmp_path / "t.stream"
        save_stream(make_trace(seed=1), path)
        trace2 = make_trace(seed=2)
        save_stream(trace2, path)
        assert StreamingTrace(path).fingerprint() == trace2.fingerprint()


class TestCorruption:
    def corrupt(self, path, name):
        victim = path / name
        data = bytearray(victim.read_bytes())
        data[-1] ^= 0xFF
        victim.write_bytes(bytes(data))

    def test_corrupt_chunk_quarantined(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.stream"
        save_stream(trace, path, chunk_refs=100)
        self.corrupt(path, "refs_00000.npy")
        st = StreamingTrace(path)
        with pytest.raises(TraceCorruptionError):
            st.frames[0]
        assert (path / "quarantine" / "refs_00000.npy").exists()
        assert not (path / "refs_00000.npy").exists()

    def test_verify_reports_bad_chunk(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.stream"
        save_stream(trace, path, chunk_refs=100)
        st = StreamingTrace(path)
        assert st.verify().ok
        self.corrupt(path, "weights_00001.npy")
        report = StreamingTrace(path).verify()
        assert not report.ok
        assert [c.name for c in report.problems] == ["weights_00001.npy"]

    def test_corrupt_index_fails_at_open(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.stream"
        save_stream(trace, path)
        self.corrupt(path, "frame_starts.npy")
        with pytest.raises(TraceCorruptionError):
            StreamingTrace(path)

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "t.stream").mkdir()
        with pytest.raises(FileNotFoundError):
            StreamingTrace(tmp_path / "t.stream")

    def test_unsupported_version(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.stream"
        save_stream(trace, path)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(TraceFormatError):
            StreamingTrace(path)

    def test_verify_false_skips_checksums(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.stream"
        save_stream(trace, path, chunk_refs=100)
        self.corrupt(path, "refs_00000.npy")
        st = StreamingTrace(path, verify=False)
        st.frames[0]  # loads without raising


class TestOpenTrace:
    def test_dispatch_by_path_kind(self, tmp_path):
        trace = make_trace()
        npz = tmp_path / "t.npz"
        stream = tmp_path / "t.stream"
        save_trace(trace, npz)
        save_stream(trace, stream)
        a = open_trace(npz)
        b = open_trace(stream)
        assert isinstance(a, Trace)
        assert isinstance(b, StreamingTrace)
        assert a.fingerprint() == b.fingerprint() == trace.fingerprint()


class TestConsumers:
    def test_hierarchy_runs_streamed_trace(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.stream"
        save_stream(trace, path, chunk_refs=128)
        st = StreamingTrace(path)
        config = HierarchyConfig(
            l1=L1CacheConfig(size_bytes=2048),
            l2=L2CacheConfig(size_bytes=16384),
        )
        res_mem = MultiLevelTextureCache(config, trace.address_space).run_trace(trace)
        res_str = MultiLevelTextureCache(config, st.address_space).run_trace(st)
        assert [f.l1_misses for f in res_mem.frames] == [
            f.l1_misses for f in res_str.frames
        ]
        assert [f.l2.full_misses for f in res_mem.frames] == [
            f.l2.full_misses for f in res_str.frames
        ]

    def test_lazy_merge_identical_to_eager(self, tmp_path):
        t1, t2 = make_trace(seed=3), make_trace(seed=4)
        eager, bases_e = merge_traces([t1, t2], schedule="weighted",
                                      weights=[1.0, 3.0], seed=7)
        lazy, bases_l = merge_traces([t1, t2], schedule="weighted",
                                     weights=[1.0, 3.0], seed=7, lazy=True)
        assert bases_e == bases_l
        assert len(lazy.frames) == len(eager.frames)
        for a, b in zip(eager.frames, lazy.frames):
            frames_equal(a, b)
        assert lazy.fingerprint() == eager.fingerprint()

    def test_lazy_merge_of_streamed_tenants(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.stream"
        save_stream(trace, path, chunk_refs=128)
        st = StreamingTrace(path)
        eager, _ = merge_traces([trace, trace], schedule="rr", seed=1)
        lazy, _ = merge_traces([st, st], schedule="rr", seed=1, lazy=True)
        for a, b in zip(eager.frames, lazy.frames):
            frames_equal(a, b)
