"""Tests for trace containers and persistence."""

import numpy as np
import pytest

from repro.texture.texture import Texture
from repro.trace.trace import FrameTrace, Trace, TraceMeta
from repro.trace.tracefile import load_trace, save_trace


def make_trace(n_frames=3):
    textures = [Texture("a", 64, 64, original_depth_bits=16),
                Texture("b", 32, 32, original_depth_bits=32)]
    frames = []
    rng = np.random.default_rng(0)
    for i in range(n_frames):
        n = 5 + i
        frames.append(
            FrameTrace(
                refs=rng.integers(0, 1000, n).astype(np.int64),
                weights=rng.integers(1, 5, n).astype(np.int64),
                n_fragments=n * 3,
            )
        )
    meta = TraceMeta("village", 320, 240, "bilinear", n_frames)
    return Trace(meta=meta, frames=frames, textures=textures)


class TestFrameTrace:
    def test_texel_reads_sums_weights(self):
        f = FrameTrace(np.array([1, 2]), np.array([3, 4]), n_fragments=7)
        assert f.texel_reads == 7

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            FrameTrace(np.array([1, 2]), np.array([1]), n_fragments=2)


class TestTrace:
    def test_frame_count_validated(self):
        t = make_trace()
        with pytest.raises(ValueError):
            Trace(meta=t.meta, frames=t.frames[:-1], textures=t.textures)

    def test_address_space_lazy_and_cached(self):
        t = make_trace()
        assert t.address_space is t.address_space
        assert t.address_space.texture_count == 2

    def test_totals(self):
        t = make_trace()
        assert t.total_texel_reads() == sum(f.texel_reads for f in t.frames)
        assert t.pixels_per_frame == 320 * 240


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        t = make_trace()
        path = tmp_path / "t.npz"
        save_trace(t, path)
        loaded = load_trace(path)
        assert loaded.meta == t.meta
        assert len(loaded.frames) == len(t.frames)
        for a, b in zip(loaded.frames, t.frames):
            assert np.array_equal(a.refs, b.refs)
            assert np.array_equal(a.weights, b.weights)
            assert a.n_fragments == b.n_fragments
        assert [tex.name for tex in loaded.textures] == ["a", "b"]
        assert loaded.textures[1].original_depth_bits == 32

    def test_texture_geometry_survives(self, tmp_path):
        t = make_trace()
        path = tmp_path / "t.npz"
        save_trace(t, path)
        loaded = load_trace(path)
        assert loaded.textures[0].level_count == t.textures[0].level_count
        assert loaded.textures[0].host_bytes == t.textures[0].host_bytes

    def test_version_check(self, tmp_path):
        import repro.trace.tracefile as tf

        t = make_trace()
        path = tmp_path / "t.npz"
        old = tf._FORMAT_VERSION
        try:
            tf._FORMAT_VERSION = old + 1
            save_trace(t, path)
        finally:
            tf._FORMAT_VERSION = old
        with pytest.raises(ValueError):
            load_trace(path)

    def test_empty_frames_roundtrip(self, tmp_path):
        textures = [Texture("a", 16, 16)]
        frames = [FrameTrace(np.empty(0, dtype=np.int64),
                             np.empty(0, dtype=np.int64), 0)]
        t = Trace(TraceMeta("x", 8, 8, "point", 1), frames, textures)
        path = tmp_path / "e.npz"
        save_trace(t, path)
        loaded = load_trace(path)
        assert loaded.frames[0].texel_reads == 0
