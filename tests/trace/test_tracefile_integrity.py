"""Integrity tests for trace persistence: v3 checksums, legacy v2 reads,
corruption detection, and hypothesis round-trip properties."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceCorruptionError, TraceFormatError
from repro.reliability.integrity import array_checksum, verify_npz
from repro.texture.texture import Texture
from repro.trace.trace import FrameTrace, Trace, TraceMeta
from repro.trace.tracefile import load_trace, read_meta, save_trace


def make_trace(n_frames=3, with_offsets=False, seed=0):
    textures = [Texture("a", 64, 64, original_depth_bits=16),
                Texture("b", 32, 32, original_depth_bits=32)]
    rng = np.random.default_rng(seed)
    frames = []
    for i in range(n_frames):
        n = 6 + i
        offsets = np.array([0, n // 2], dtype=np.int64) if with_offsets else None
        frames.append(
            FrameTrace(
                refs=rng.integers(0, 1000, n).astype(np.int64),
                weights=rng.integers(1, 5, n).astype(np.int64),
                n_fragments=n * 3,
                object_offsets=offsets,
            )
        )
    meta = TraceMeta("village", 320, 240, "bilinear", n_frames)
    return Trace(meta=meta, frames=frames, textures=textures)


def save_v2(trace, path):
    """Write the legacy v2 layout (no checksums, in-place write)."""
    payload = {}
    meta = {
        "version": 2,
        "workload": trace.meta.workload,
        "width": trace.meta.width,
        "height": trace.meta.height,
        "filter_mode": trace.meta.filter_mode,
        "n_frames": trace.meta.n_frames,
        "textures": [
            {"name": t.name, "width": t.width, "height": t.height,
             "original_depth_bits": t.original_depth_bits}
            for t in trace.textures
        ],
    }
    payload["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    payload["n_fragments"] = np.array(
        [f.n_fragments for f in trace.frames], dtype=np.int64
    )
    for i, frame in enumerate(trace.frames):
        payload[f"refs_{i}"] = frame.refs
        payload[f"weights_{i}"] = frame.weights
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **payload)


def assert_traces_equal(a, b):
    assert a.meta == b.meta
    assert len(a.frames) == len(b.frames)
    for fa, fb in zip(a.frames, b.frames):
        assert np.array_equal(fa.refs, fb.refs)
        assert np.array_equal(fa.weights, fb.weights)
        assert fa.n_fragments == fb.n_fragments
        if fa.object_offsets is None:
            assert fb.object_offsets is None
        else:
            assert np.array_equal(fa.object_offsets, fb.object_offsets)
    assert [t.name for t in a.textures] == [t.name for t in b.textures]


class TestV3Format:
    def test_manifest_has_checksums(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(make_trace(), path)
        meta = read_meta(path)
        assert meta["version"] == 3
        assert "refs_0" in meta["checksums"]
        assert "n_fragments" in meta["checksums"]

    def test_roundtrip_with_offsets(self, tmp_path):
        t = make_trace(with_offsets=True)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        assert_traces_equal(t, load_trace(path))

    def test_save_is_atomic_no_leftovers(self, tmp_path):
        save_trace(make_trace(), tmp_path / "t.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["t.npz"]

    def test_legacy_v2_still_loads(self, tmp_path):
        t = make_trace()
        path = tmp_path / "v2.npz"
        save_v2(t, path)
        assert_traces_equal(t, load_trace(path))

    def test_unsupported_version_rejected_as_valueerror(self, tmp_path):
        import repro.trace.tracefile as tf

        path = tmp_path / "t.npz"
        old = tf._FORMAT_VERSION
        try:
            tf._FORMAT_VERSION = 99
            save_trace(make_trace(), path)
        finally:
            tf._FORMAT_VERSION = old
        with pytest.raises(TraceFormatError):
            load_trace(path)
        with pytest.raises(ValueError):  # taxonomy keeps the legacy contract
            load_trace(path)


class TestCorruptionDetection:
    def test_truncated_file(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(make_trace(), path)
        raw = path.read_bytes()
        path.write_bytes(raw[: int(len(raw) * 0.6)])
        with pytest.raises(TraceCorruptionError):
            load_trace(path)

    def test_missing_frame_array_named(self, tmp_path):
        t = make_trace(n_frames=2)
        path = tmp_path / "t.npz"
        save_v2(t, path)
        # Rewrite the archive without refs_1 (a half-written v2 cache entry).
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files if k != "refs_1"}
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **payload)
        with pytest.raises(TraceCorruptionError) as excinfo:
            load_trace(path)
        assert excinfo.value.missing_array == "refs_1"
        assert "refs_1" in str(excinfo.value)
        assert str(path) in str(excinfo.value)

    def test_bit_flip_in_archive(self, tmp_path):
        import struct
        import zipfile

        path = tmp_path / "t.npz"
        save_trace(make_trace(), path)
        # Flip a byte inside refs_0's compressed payload, where the zip
        # layer's member CRC catches it. The name/extra lengths must come
        # from the local header — it can carry a zip64 extra field the
        # central directory entry omits.
        with zipfile.ZipFile(path) as zf:
            header_offset = zf.getinfo("refs_0.npy").header_offset
        raw = bytearray(path.read_bytes())
        name_len, extra_len = struct.unpack_from("<HH", raw, header_offset + 26)
        raw[header_offset + 30 + name_len + extra_len + 4] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceCorruptionError):
            load_trace(path)

    def test_content_swap_caught_by_checksum(self, tmp_path):
        # Rebuild the zip with one array's contents changed but the
        # original manifest: the container is intact (zip CRCs match the
        # new bytes), only the trace-level checksum can catch it.
        path = tmp_path / "t.npz"
        save_trace(make_trace(), path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["refs_0"] = payload["refs_0"].copy()
        payload["refs_0"][0] ^= 1
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **payload)
        with pytest.raises(TraceCorruptionError) as excinfo:
            load_trace(path)
        assert "refs_0" in str(excinfo.value)
        # verify=False trusts the (intact) container and loads.
        assert load_trace(path, verify=False) is not None

    def test_nonexistent_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "missing.npz")


class TestVerifyNpz:
    def test_clean_archive_ok(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(make_trace(), path)
        report = verify_npz(path)
        assert report.ok
        assert report.version == 3
        assert report.n_frames == 3
        assert all(report.frame_status(i) == "ok" for i in range(3))

    def test_v2_reports_unchecksummed_but_ok(self, tmp_path):
        path = tmp_path / "v2.npz"
        save_v2(make_trace(), path)
        report = verify_npz(path)
        assert report.ok
        assert all(c.status == "unchecksummed" for c in report.checks)

    def test_damaged_member_reported_per_frame(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(make_trace(), path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["weights_1"] = payload["weights_1"].copy()
        payload["weights_1"][0] += 1
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **payload)
        report = verify_npz(path)
        assert not report.ok
        assert report.frame_status(0) == "ok"
        assert report.frame_status(1) == "checksum-mismatch"
        assert [c.name for c in report.problems] == ["weights_1"]

    def test_unreadable_container_raises(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(TraceCorruptionError):
            verify_npz(path)


class TestChecksum:
    def test_sensitive_to_content_shape_dtype(self):
        a = np.arange(8, dtype=np.int64)
        assert array_checksum(a) == array_checksum(a.copy())
        assert array_checksum(a) != array_checksum(a.astype(np.int32))
        assert array_checksum(a) != array_checksum(a.reshape(2, 4))
        b = a.copy()
        b[3] ^= 1
        assert array_checksum(a) != array_checksum(b)


# ----------------------------------------------------------------------
# Property tests: arbitrary traces survive a save/load round trip, in
# both the current and the legacy format.
# ----------------------------------------------------------------------

frame_strategy = st.integers(0, 12).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 2**40), min_size=n, max_size=n),
        st.lists(st.integers(1, 100), min_size=n, max_size=n),
        st.integers(0, 10_000),
    )
)


def build_trace(frame_specs):
    frames = [
        FrameTrace(
            refs=np.array(refs, dtype=np.int64),
            weights=np.array(weights, dtype=np.int64),
            n_fragments=n_fragments,
        )
        for refs, weights, n_fragments in frame_specs
    ]
    meta = TraceMeta("prop", 64, 48, "point", len(frames))
    return Trace(meta=meta, frames=frames, textures=[Texture("t", 32, 32)])


@settings(max_examples=25)
@given(st.lists(frame_strategy, min_size=1, max_size=5))
def test_roundtrip_property_v3(tmp_path_factory, frame_specs):
    trace = build_trace(frame_specs)
    path = tmp_path_factory.mktemp("prop") / "t.npz"
    save_trace(trace, path)
    assert_traces_equal(trace, load_trace(path))
    assert verify_npz(path).ok


@settings(max_examples=25)
@given(st.lists(frame_strategy, min_size=1, max_size=5))
def test_roundtrip_property_legacy_v2(tmp_path_factory, frame_specs):
    trace = build_trace(frame_specs)
    path = tmp_path_factory.mktemp("prop") / "t.npz"
    save_v2(trace, path)
    assert_traces_equal(trace, load_trace(path))
