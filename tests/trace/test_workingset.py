"""Tests for working-set analysis (Figs 4/5 machinery)."""

import numpy as np
import pytest

from repro.texture.texture import Texture
from repro.texture.tiling import pack_tile_refs
from repro.trace.trace import FrameTrace, Trace, TraceMeta
from repro.trace.workingset import (
    l2_memory_curve,
    per_frame_new_blocks,
    per_frame_unique_blocks,
    push_memory_curve,
    texture_memory_curve,
    total_and_new_memory,
)


def trace_from_tiles(frame_tiles, textures=None):
    """frame_tiles: list of lists of (tid, mip, ty, tx)."""
    textures = textures or [Texture("a", 64, 64, original_depth_bits=16),
                            Texture("b", 64, 64, original_depth_bits=32)]
    frames = []
    for tiles in frame_tiles:
        if tiles:
            tids, mips, tys, txs = zip(*tiles)
            refs = pack_tile_refs(np.array(tids), np.array(mips),
                                  np.array(tys), np.array(txs))
        else:
            refs = np.empty(0, dtype=np.int64)
        frames.append(FrameTrace(refs, np.ones(len(refs), dtype=np.int64),
                                 n_fragments=len(refs)))
    meta = TraceMeta("t", 16, 16, "point", len(frames))
    return Trace(meta=meta, frames=frames, textures=textures)


class TestUniqueBlocks:
    def test_l1_granularity_counts_tiles(self):
        t = trace_from_tiles([[(0, 0, 0, 0), (0, 0, 0, 1), (0, 0, 0, 0)]])
        uniques = per_frame_unique_blocks(t, 4)
        assert len(uniques[0]) == 2

    def test_l2_granularity_merges_tiles(self):
        # Tiles (0,0) and (3,3) share the 16x16 block; (0,4) does not.
        t = trace_from_tiles([[(0, 0, 0, 0), (0, 0, 3, 3), (0, 0, 0, 4)]])
        assert len(per_frame_unique_blocks(t, 16)[0]) == 2

    def test_rejects_non_multiple(self):
        t = trace_from_tiles([[]])
        with pytest.raises(ValueError):
            per_frame_unique_blocks(t, 6)


class TestNewBlocks:
    def test_first_frame_all_new(self):
        t = trace_from_tiles([[(0, 0, 0, 0), (0, 0, 0, 4)]])
        uniques = per_frame_unique_blocks(t, 16)
        assert per_frame_new_blocks(uniques).tolist() == [2]

    def test_repeat_frame_not_new(self):
        tiles = [(0, 0, 0, 0), (0, 0, 0, 4)]
        t = trace_from_tiles([tiles, tiles])
        uniques = per_frame_unique_blocks(t, 16)
        assert per_frame_new_blocks(uniques).tolist() == [2, 0]

    def test_only_previous_frame_counts(self):
        a = [(0, 0, 0, 0)]
        b = [(0, 0, 0, 4)]
        # Frame 3 re-touches frame 1's block: "new" relative to frame 2.
        t = trace_from_tiles([a, b, a])
        uniques = per_frame_unique_blocks(t, 16)
        assert per_frame_new_blocks(uniques).tolist() == [1, 1, 1]


class TestMemoryCurves:
    def test_l2_curve_scales_with_block_size(self):
        t = trace_from_tiles([[(0, 0, 0, 0)]])
        assert l2_memory_curve(t, 16).tolist() == [16 * 16 * 4]
        assert l2_memory_curve(t, 32).tolist() == [32 * 32 * 4]

    def test_push_curve_uses_host_depth(self):
        t = trace_from_tiles([[(0, 0, 0, 0)], [(1, 0, 0, 0)],
                              [(0, 0, 0, 0), (1, 0, 0, 0)]])
        curve = push_memory_curve(t)
        a, b = t.textures
        assert curve.tolist() == [a.host_bytes, b.host_bytes,
                                  a.host_bytes + b.host_bytes]

    def test_texture_memory_flat(self):
        t = trace_from_tiles([[(0, 0, 0, 0)], []])
        curve = texture_memory_curve(t)
        total = sum(tex.host_bytes for tex in t.textures)
        assert curve.tolist() == [total, total]

    def test_total_and_new(self):
        tiles = [(0, 0, 0, 0)]
        t = trace_from_tiles([tiles, tiles + [(0, 0, 0, 4)]])
        total, new = total_and_new_memory(t, 16)
        assert total.tolist() == [1024, 2048]
        assert new.tolist() == [1024, 1024]

    def test_l2_minimum_below_push_for_sparse_touch(self):
        # Touching one tile of a big texture: L2 needs one block, push needs
        # the whole texture.
        t = trace_from_tiles([[(0, 0, 0, 0)]])
        assert l2_memory_curve(t, 16)[0] < push_memory_curve(t)[0]
