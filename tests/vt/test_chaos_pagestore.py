"""Chaos page-store bitflips mid-sweep: quarantine, refetch, converge.

Full hierarchy integration: a paged run whose chaos policy bit-flips
resident pages *while the sweep is running* must (a) quarantine and
refetch the damaged pages, (b) never stall a frame, (c) produce the same
frames on the reference and batched engines, and (d) converge
byte-identically in the simulation store after a checkpoint interrupt +
resume — the bitflip schedule hashes the frame counter, so resumption
must restore it exactly.
"""

import numpy as np
import pytest

from repro.core.hierarchy import HierarchyConfig, MultiLevelTextureCache
from repro.core.l1_cache import L1CacheConfig
from repro.core.l2_cache import L2CacheConfig
from repro.reliability.chaos import ChaosPolicy
from repro.reliability.faults import FaultModel
from repro.reliability.transfer import TransferPolicy
from repro.texture.texture import Texture
from repro.texture.tiling import AddressSpace, pack_tile_refs
from repro.trace.trace import FrameTrace, Trace, TraceMeta
from repro.vt import VtConfig

N_FRAMES = 8


def make_space():
    return AddressSpace([Texture("a", 128, 128), Texture("b", 64, 64)])


def make_trace(space, seed=17, refs_per_frame=200):
    rng = np.random.default_rng(seed)
    frames = []
    for _ in range(N_FRAMES):
        tid = int(rng.integers(space.texture_count))
        tex = space.textures[tid]
        w, h = tex.level_dims(0)
        refs = pack_tile_refs(
            tid,
            0,
            rng.integers(0, h // 4, size=refs_per_frame),
            rng.integers(0, w // 4, size=refs_per_frame),
            check=False,
        )
        frames.append(
            FrameTrace(refs, np.ones(len(refs), dtype=np.int64), len(refs))
        )
    meta = TraceMeta("vt-chaos", 16, 16, "point", N_FRAMES)
    return Trace(meta=meta, frames=frames, textures=space.textures)


def make_config():
    """Paged hierarchy with aggressive page-store damage mid-sweep."""
    return HierarchyConfig(
        l1=L1CacheConfig(size_bytes=2048),
        l2=L2CacheConfig(size_bytes=32 * 1024, l2_tile_texels=16),
        tlb_entries=4,
        vt=VtConfig(
            page_texels=16,
            max_resident_pages=48,
            max_in_flight=8,
            frame_budget_us=600.0,
            fetch_latency_us=25.0,
            timeout_frames=3,
            fault_model=FaultModel(
                drop_rate=0.2, spike_rate=0.3, spike_us=150.0, seed=21
            ),
            policy=TransferPolicy(max_retries=2, backoff_base_us=30.0),
            chaos=ChaosPolicy(
                seed=19, kill_rate=0.4, max_attempt=1, bitflip_rate=0.25
            ),
        ),
    )


class TestBitflipMidSweep:
    @pytest.mark.parametrize("use_reference", [True, False], ids=["ref", "batched"])
    def test_quarantines_refetches_and_never_stalls(self, use_reference):
        space = make_space()
        result = MultiLevelTextureCache(
            make_config(), space, use_reference=use_reference
        ).run_trace(make_trace(space))
        # The chaos schedule actually bit: pages were damaged and healed.
        assert result.total_page_quarantines > 0
        assert result.total_page_fetches > 0
        assert result.total_pages_degraded > 0
        assert result.stall_free_rate == 1.0

    def test_engines_agree_bit_identically(self):
        space = make_space()
        trace = make_trace(space)
        config = make_config()
        ref = MultiLevelTextureCache(
            config, space, use_reference=True
        ).run_trace(trace)
        batched = MultiLevelTextureCache(
            config, space, use_reference=False
        ).run_trace(trace)
        assert ref.frames == batched.frames

    @pytest.mark.parametrize("use_reference", [True, False], ids=["ref", "batched"])
    def test_interrupted_run_converges_byte_identically(
        self, tmp_path, monkeypatch, use_reference
    ):
        from repro.experiments import simstore

        space = make_space()
        trace = make_trace(space)
        config = make_config()
        path = tmp_path / "vt.ckpt"

        full = MultiLevelTextureCache(
            config, space, use_reference=use_reference
        ).run_trace(trace, checkpoint_path=path, checkpoint_every=3)
        # The checkpoint at frame 6 is on disk; a fresh process resumes the
        # tail. Frame counter, residency, in-flight queue, and RNG must all
        # restore for the bitflip schedule to line up again.
        resumed = MultiLevelTextureCache(
            config, space, use_reference=use_reference
        ).run_trace(trace, checkpoint_path=path, resume=True)
        assert resumed.frames == full.frames
        assert full.total_page_quarantines > 0

        monkeypatch.setenv("REPRO_SIM_CACHE", str(tmp_path / "a"))
        path_a = simstore.save(trace, config, full)
        monkeypatch.setenv("REPRO_SIM_CACHE", str(tmp_path / "b"))
        path_b = simstore.save(trace, config, resumed)
        assert path_a.read_bytes() == path_b.read_bytes()
