"""Megatexture page addressing, residency, and the fallback ladder."""

import numpy as np
import pytest

from repro.texture.texture import Texture
from repro.texture.tiling import AddressSpace, pack_tile_refs, unpack_tile_refs
from repro.texture.fallback import fallback_page
from repro.vt.megatexture import MegaTexture
from repro.vt.residency import PageResidency


def make_space():
    return AddressSpace(
        [Texture("a", 64, 64), Texture("b", 128, 128), Texture("c", 96, 32)]
    )


class TestMegaTexture:
    def test_page_grid_covers_every_level(self):
        mega = MegaTexture(make_space(), page_texels=32)
        assert mega.pages_wh(0, 0) == (2, 2)  # 64/32
        assert mega.pages_wh(1, 0) == (4, 4)  # 128/32
        assert mega.pages_wh(1, 1) == (2, 2)
        assert mega.pages_wh(2, 0) == (3, 1)  # 96x32: ceil-div
        # Coarse levels never round to zero pages.
        tid = 0
        for mip in range(mega.coarsest_mip(tid) + 1):
            pw, ph = mega.pages_wh(tid, mip)
            assert pw >= 1 and ph >= 1

    def test_page_bytes(self):
        mega = MegaTexture(make_space(), page_texels=32)
        assert mega.page_bytes == 32 * 32 * 4

    def test_invalid_page_size_rejected(self):
        with pytest.raises(ValueError):
            MegaTexture(make_space(), page_texels=24)
        with pytest.raises(ValueError):
            MegaTexture(make_space(), page_texels=2)

    def test_page_refs_coarsen_tile_refs(self):
        mega = MegaTexture(make_space(), page_texels=16)
        # Tile (mip 0, y 5, x 7) covers texels (20..23, 28..31) -> page (1, 1).
        refs = pack_tile_refs(1, 0, 5, 7, check=False)
        page = unpack_tile_refs(mega.page_refs(refs))
        assert (int(page.tile_y), int(page.tile_x)) == (1, 1)

    def test_ancestor_walk_shifts_and_clamps(self):
        mega = MegaTexture(make_space(), page_texels=32)
        page = int(pack_tile_refs(1, 0, 3, 2, check=False))
        up = unpack_tile_refs(np.int64(mega.ancestor(page, 1)))
        assert (int(up.mip), int(up.tile_y), int(up.tile_x)) == (1, 1, 1)
        # Deep ancestors clamp to the 1x1 coarse page grid.
        deep = unpack_tile_refs(np.int64(mega.ancestor(page, mega.coarsest_mip(1))))
        assert (int(deep.tile_y), int(deep.tile_x)) == (0, 0)

    def test_coarsest_pages_one_per_texture(self):
        space = make_space()
        mega = MegaTexture(space, page_texels=32)
        pages = mega.coarsest_pages()
        assert len(pages) == space.texture_count
        for tid, page in enumerate(pages):
            f = unpack_tile_refs(page)
            assert int(f.tid) == tid
            assert int(f.mip) == mega.coarsest_mip(tid)


class TestPageResidency:
    def test_capacity_must_exceed_pinned(self):
        with pytest.raises(ValueError):
            PageResidency(2, [1, 2])

    def test_pinned_pages_never_evicted_or_dropped(self):
        res = PageResidency(3, [100])
        assert 100 in res
        assert not res.drop(100)
        res.insert(1)
        res.insert(2)
        evicted = res.insert(3)  # over capacity: one unpinned page goes
        assert evicted and 100 not in evicted
        assert 100 in res

    def test_lru_eviction_order(self):
        res = PageResidency(3, [99])
        res.insert(1)
        res.insert(2)
        res.touch(1)  # 2 is now least recently used
        assert res.insert(3) == [2]
        assert 1 in res and 3 in res

    def test_snapshot_restore_roundtrip(self):
        res = PageResidency(4, [50])
        res.insert(1)
        res.insert(2)
        res.touch(1)
        snap = res.snapshot_state()
        other = PageResidency(4, [50])
        other.restore_state(snap)
        assert other.unpinned_pages() == res.unpinned_pages()
        # The restored clock continues the same eviction sequence.
        assert other.insert(3) == res.insert(3)


class TestFallback:
    def test_falls_back_to_nearest_resident_ancestor(self):
        space = make_space()
        mega = MegaTexture(space, page_texels=32)
        res = PageResidency(8, mega.coarsest_pages())
        page = int(pack_tile_refs(1, 0, 3, 3, check=False))
        anc, bias = fallback_page(mega, res, page)
        assert bias == mega.coarsest_mip(1)  # only the pinned page resident
        res.insert(mega.ancestor(page, 1))
        anc, bias = fallback_page(mega, res, page)
        assert bias == 1 and anc == mega.ancestor(page, 1)

    def test_no_resident_ancestor_is_loud(self):
        space = make_space()
        mega = MegaTexture(space, page_texels=32)
        page = int(pack_tile_refs(1, 0, 3, 3, check=False))
        with pytest.raises(LookupError):
            fallback_page(mega, frozenset(), page)
