"""MIP-bias load shedding: page coarsening and the matching cost model."""

import numpy as np
import pytest

from repro.raster.feedback import page_requests
from repro.texture.texture import Texture
from repro.texture.tiling import AddressSpace, pack_tile_refs, unpack_tile_refs
from repro.vt.megatexture import MegaTexture
from repro.vt.shed import MIP_FALLOFF, bias_cost_multiplier, shed_page_requests


def make_mega(page_texels=16):
    space = AddressSpace(
        [Texture("a", 64, 64), Texture("b", 128, 128)]
    )
    return MegaTexture(space, page_texels=page_texels)


def fine_refs():
    # Mip-0 tiles spanning four distinct pages of texture 1 (a 16-texel
    # page holds 4x4 tiles, so tile coords 0 and 4 land on neighbouring
    # pages that share one mip-1 ancestor) plus one page of texture 0.
    tiles = [(1, 0, y, x) for y in (0, 4) for x in (0, 4)]
    tiles.append((0, 0, 1, 1))
    return np.asarray(
        [int(pack_tile_refs(t, m, y, x, check=False)) for t, m, y, x in tiles],
        dtype=np.int64,
    )


class TestCostMultiplier:
    def test_bias_zero_is_identity(self):
        assert bias_cost_multiplier(0) == 1.0

    def test_each_level_quarters_the_work(self):
        assert MIP_FALLOFF == 4.0
        assert bias_cost_multiplier(1) == pytest.approx(0.25)
        assert bias_cost_multiplier(2) == pytest.approx(0.0625)
        assert bias_cost_multiplier(3) == pytest.approx(4.0**-3)

    def test_custom_falloff(self):
        assert bias_cost_multiplier(2, falloff=2.0) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            bias_cost_multiplier(-1)
        with pytest.raises(ValueError):
            bias_cost_multiplier(1, falloff=0.5)


class TestShedPageRequests:
    def test_bias_zero_matches_page_requests(self):
        mega = make_mega()
        refs = fine_refs()
        assert np.array_equal(
            shed_page_requests(mega, refs, 0),
            page_requests(refs, mega.page_texels),
        )

    def test_bias_collapses_pages_onto_ancestors(self):
        mega = make_mega()
        refs = fine_refs()
        base = shed_page_requests(mega, refs, 0)
        shed = shed_page_requests(mega, refs, 1)
        # Coarsening merges sibling pages: strictly fewer requests, and
        # every surviving page is one MIP level up (or clamped).
        assert len(shed) < len(base)
        for page in shed:
            f = unpack_tile_refs(np.int64(int(page)))
            assert int(f.mip) >= 1 or mega.coarsest_mip(int(f.tid)) == 0

    def test_deep_bias_clamps_to_coarsest_level(self):
        mega = make_mega()
        refs = fine_refs()
        shed = shed_page_requests(mega, refs, 99)
        # One page per touched texture: everything collapsed to the tip.
        tids = {int(unpack_tile_refs(np.int64(int(p))).tid) for p in shed}
        assert tids == {0, 1}
        for page in shed:
            f = unpack_tile_refs(np.int64(int(page)))
            assert int(f.mip) == mega.coarsest_mip(int(f.tid))

    def test_first_touch_order_preserved(self):
        mega = make_mega()
        refs = fine_refs()
        shed = list(shed_page_requests(mega, refs, 1))
        # Deterministic: same refs, same bias -> identical order.
        assert shed == list(shed_page_requests(mega, refs, 1))
        # No duplicates survive the re-unique.
        assert len(shed) == len(set(shed))

    def test_empty_refs(self):
        mega = make_mega()
        empty = np.asarray([], dtype=np.int64)
        assert len(shed_page_requests(mega, empty, 2)) == 0

    def test_validation(self):
        mega = make_mega()
        with pytest.raises(ValueError):
            shed_page_requests(mega, fine_refs(), -1)
