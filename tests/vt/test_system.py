"""The per-frame VT engine: deadlines, faults, fallback, and state.

The central invariant under test: **a frame never blocks**. Whatever the
link does — 100% first-attempt kills, permanent drops, injected stalls,
page-store bitflips, a zero service budget — ``run_frame`` returns with
``stalls == 0`` and the quality penalty shows up in the degradation
counters instead.
"""

import numpy as np
import pytest

from repro.reliability.chaos import ChaosPolicy
from repro.reliability.faults import FaultModel
from repro.reliability.transfer import TransferPolicy
from repro.texture.texture import Texture
from repro.texture.tiling import AddressSpace, pack_tile_refs
from repro.vt import FrameVtStats, VirtualTextureSystem, VtConfig

N_PAGES = 64  # mip-0 pages of the 128x128 texture at page_texels=16


def make_space():
    return AddressSpace([Texture("big", 128, 128), Texture("small", 32, 32)])


def full_refs(tid=0):
    """Every mip-0 4x4 tile of the 128x128 texture (covers all 64 pages)."""
    ys, xs = np.meshgrid(np.arange(32), np.arange(32), indexing="ij")
    return pack_tile_refs(tid, 0, ys.ravel(), xs.ravel(), check=False)


def make_config(**overrides):
    base = dict(
        page_texels=16,
        max_resident_pages=128,
        max_in_flight=128,
        frame_budget_us=100_000.0,
        fetch_latency_us=20.0,
        timeout_frames=4,
    )
    base.update(overrides)
    return VtConfig(**base)


class TestVtConfig:
    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            make_config(page_texels=24)
        with pytest.raises(ValueError):
            make_config(page_texels=2)

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError):
            make_config(max_resident_pages=0)
        with pytest.raises(ValueError):
            make_config(max_in_flight=0)
        with pytest.raises(ValueError):
            make_config(timeout_frames=0)
        with pytest.raises(ValueError):
            make_config(frame_budget_us=-1.0)
        with pytest.raises(ValueError):
            make_config(fetch_latency_us=0.0)


class TestFrameVtStats:
    def test_degradation_metrics(self):
        clean = FrameVtStats()
        assert not clean.degraded and clean.mean_mip_bias == 0.0
        hit = FrameVtStats(degraded_pages=4, mip_bias_sum=10.0)
        assert hit.degraded and hit.mean_mip_bias == 2.5


class TestCleanStreaming:
    def test_generous_budget_pages_everything_first_frame(self):
        vt = VirtualTextureSystem(make_config(), make_space())
        stats = vt.run_frame(full_refs())
        assert stats.visible_pages == N_PAGES
        assert stats.completed_fetches == N_PAGES
        assert stats.fetched_bytes == N_PAGES * 16 * 16 * 4
        assert stats.degraded_pages == 0
        assert stats.stalls == 0
        assert stats.in_flight == 0

    def test_zero_budget_degrades_everything_without_blocking(self):
        vt = VirtualTextureSystem(make_config(frame_budget_us=0.0), make_space())
        stats = vt.run_frame(full_refs())
        assert stats.completed_fetches == 0
        assert stats.degraded_pages == stats.visible_pages == N_PAGES
        assert stats.mean_mip_bias > 0.0
        assert stats.stalls == 0  # never blocks, merely degrades

    def test_residency_bound_forces_evictions(self):
        # Room for only 16 streamable pages; paging in 64 must evict.
        config = make_config(max_resident_pages=18)  # 2 pinned + 16
        vt = VirtualTextureSystem(config, make_space())
        stats = vt.run_frame(full_refs())
        assert stats.evictions == N_PAGES - 16
        assert stats.resident_pages == 18

    def test_backpressure_defers_excess_requests(self):
        vt = VirtualTextureSystem(make_config(max_in_flight=4), make_space())
        stats = vt.run_frame(full_refs())
        assert stats.requested_pages == 4
        assert stats.deferred == N_PAGES - 4
        # Still-missing visible pages are simply re-requested next frame.
        again = vt.run_frame(full_refs())
        assert again.requested_pages == 4
        assert again.stalls == stats.stalls == 0


class TestFaultTolerance:
    def test_all_first_attempts_killed_still_stall_free(self):
        """The acceptance scenario: 100% first-attempt fetch faults."""
        config = make_config(
            policy=TransferPolicy(max_retries=2),
            chaos=ChaosPolicy(seed=7, kill_rate=1.0, max_attempt=1),
        )
        vt = VirtualTextureSystem(config, make_space())
        stats = vt.run_frame(full_refs())
        # Every page needed a retry, and every retry fit the budget.
        assert stats.failed_attempts == N_PAGES
        assert stats.completed_fetches == N_PAGES
        assert stats.degraded_pages == 0
        assert stats.stalls == 0
        assert stats.backoff_us > 0.0

    def test_permanent_drops_exhaust_retries_and_degrade(self):
        config = make_config(
            fault_model=FaultModel(drop_rate=1.0, seed=1),
            policy=TransferPolicy(max_retries=1),
        )
        vt = VirtualTextureSystem(config, make_space())
        frames = [vt.run_frame(full_refs()) for _ in range(3)]
        for stats in frames:
            assert stats.completed_fetches == 0
            assert stats.degraded_pages == stats.visible_pages
            assert stats.stalls == 0
        # attempts = max_retries + 1 per request, then the fetch is dropped.
        assert frames[0].failed_fetches == N_PAGES
        assert frames[0].failed_attempts == 2 * N_PAGES

    def test_slow_link_times_out_against_deadline(self):
        # One transfer costs 10 frame budgets but the deadline is 2 frames.
        config = make_config(
            frame_budget_us=100.0, fetch_latency_us=1000.0, timeout_frames=2
        )
        vt = VirtualTextureSystem(config, make_space())
        frames = [vt.run_frame(full_refs()) for _ in range(6)]
        assert sum(f.timed_out for f in frames) > 0
        for stats in frames:
            assert stats.completed_fetches == 0
            assert stats.service_us <= 100.0
            assert stats.stalls == 0

    def test_bitflip_scrub_quarantines_and_refetches(self):
        config = make_config(
            chaos=ChaosPolicy(seed=11, bitflip_rate=1.0)  # damage everything
        )
        vt = VirtualTextureSystem(config, make_space())
        first = vt.run_frame(full_refs())
        assert first.quarantined == 0  # nothing resident to damage yet
        second = vt.run_frame(full_refs())
        # Every unpinned resident page was damaged, quarantined, and — the
        # budget being generous — refetched within the same frame.
        assert second.quarantined == N_PAGES
        assert second.completed_fetches == N_PAGES
        assert second.degraded_pages == 0
        assert second.stalls == 0

    def test_mayhem_never_stalls_and_quantifies_penalty(self):
        """Drops + spikes + kills + stalls + bitflips, tight budget."""
        config = make_config(
            max_in_flight=16,
            frame_budget_us=400.0,
            fault_model=FaultModel(
                drop_rate=0.3, spike_rate=0.5, spike_us=300.0, seed=3
            ),
            policy=TransferPolicy(max_retries=2, backoff_base_us=50.0),
            chaos=ChaosPolicy(
                seed=5,
                kill_rate=0.5,
                stall_rate=0.3,
                stall_s=0.0003,
                max_attempt=1,
                bitflip_rate=0.1,
            ),
        )
        vt = VirtualTextureSystem(config, make_space())
        frames = [vt.run_frame(full_refs()) for _ in range(10)]
        assert all(f.stalls == 0 for f in frames)  # stall-free rate 1.0
        assert sum(f.degraded_pages for f in frames) > 0
        assert sum(f.completed_fetches for f in frames) > 0
        assert sum(f.quarantined for f in frames) > 0
        # Deterministic: the identical config replays the identical run.
        replay = VirtualTextureSystem(config, make_space())
        assert [replay.run_frame(full_refs()) for _ in range(10)] == frames


def canon(node):
    """Snapshot trees with ndarrays, reduced to comparable plain data."""
    if isinstance(node, np.ndarray):
        return (node.dtype.str, node.tolist())
    if isinstance(node, dict):
        return {k: canon(v) for k, v in node.items()}
    return node


class TestSnapshotRestore:
    def chaotic_config(self):
        return make_config(
            max_in_flight=8,
            frame_budget_us=300.0,
            fault_model=FaultModel(
                drop_rate=0.25, spike_rate=0.3, spike_us=200.0, seed=9
            ),
            policy=TransferPolicy(max_retries=2, backoff_base_us=40.0),
            chaos=ChaosPolicy(
                seed=13, kill_rate=0.6, max_attempt=1, bitflip_rate=0.15
            ),
        )

    @pytest.mark.parametrize("boundary", [1, 3, 5])
    def test_restore_resumes_bit_identically(self, boundary):
        config = self.chaotic_config()
        space = make_space()
        refs = full_refs()

        baseline = VirtualTextureSystem(config, space)
        expected = [baseline.run_frame(refs) for _ in range(7)]

        first = VirtualTextureSystem(config, space)
        head = [first.run_frame(refs) for _ in range(boundary)]
        state = first.snapshot_state()

        second = VirtualTextureSystem(config, space)
        second.restore_state(state)
        tail = [second.run_frame(refs) for _ in range(7 - boundary)]

        assert head + tail == expected
        assert canon(second.snapshot_state()) == canon(baseline.snapshot_state())

    def test_snapshot_carries_inflight_queue_and_rng(self):
        config = self.chaotic_config()
        vt = VirtualTextureSystem(config, make_space())
        vt.run_frame(full_refs())
        state = vt.snapshot_state()
        assert state["frame"] == 1
        assert len(state["streamer"]["page"]) == len(vt.streamer)
        assert "rng_state" in state["streamer"]  # the fault RNG mid-stream
        assert len(state["residency"]["pages"]) == len(vt.residency)
